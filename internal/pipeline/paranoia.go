package pipeline

// Paranoia mode: a per-cycle structural invariant checker (Config.Paranoia).
//
// The simulator's hot paths earn their speed from redundant bookkeeping —
// occupancy counters beside the queues they summarize, a completion heap
// beside the completion ring, per-register waiter lists beside the PRF
// scoreboard, lazy compaction with stamp-guarded stale references. Each pair
// must agree every cycle; a divergence silently corrupts timing long before
// it corrupts results. The checker re-derives every summary from the ground
// truth each cycle and panics at the first mismatch, so a corruption is
// caught at the cycle it happens with the machine state intact, not a
// billion cycles later as a wedge or a subtly wrong IPC.
//
// The checker only reads: a paranoid run retires the same instructions in
// the same cycles as a plain one (the paranoia suite test pins this). It
// costs roughly an order of magnitude in wall clock, so it is opt-in —
// wired into CI on a reduced budget (`make paranoia`) and available from
// the CLIs as -paranoia.
//
// Violations panic rather than return errors: the experiment engine
// captures panics with their stacks (PanicError), so a violation in a long
// suite degrades to a quarantined cell with a repro bundle instead of lost
// work, and the stack names the exact invariant.

import (
	"fmt"

	"teasim/internal/isa"
)

// paranoiaRingPeriod spaces the O(ring) completion-ring sweep; the O(1)
// heap-vs-counter check still runs every cycle.
const paranoiaRingPeriod = 4096

// paranoiac panics with a cycle-stamped invariant violation.
func (c *Core) paranoiac(format string, args ...any) {
	panic(fmt.Sprintf("paranoia: cycle %d: %s", c.Cycle, fmt.Sprintf(format, args...)))
}

// checkInvariants validates the core's cross-structure invariants. Called at
// the end of every Tick when Cfg.Paranoia is set (stages are quiescent: no
// structure is mid-update at the tick boundary).
func (c *Core) checkInvariants() {
	c.checkROB()
	c.checkPRF()
	c.checkScheduler()
	c.checkCompletions()
	c.checkFrontend()
}

// checkROB: the reorder buffer is age-ordered with no squashed or pooled
// entries, and the load/store occupancy counters match a ground-truth count.
func (c *Core) checkROB() {
	loads, stores := 0, 0
	var prevSeq uint64
	for i := 0; i < c.rob.len(); i++ {
		u := c.rob.at(i)
		if u.pooled {
			c.paranoiac("ROB[%d] (seq %d) is pooled", i, u.Seq)
		}
		if u.Squashed {
			c.paranoiac("ROB[%d] (seq %d) is squashed", i, u.Seq)
		}
		if i > 0 && u.Seq <= prevSeq {
			c.paranoiac("ROB age order broken: [%d].Seq=%d after %d", i, u.Seq, prevSeq)
		}
		prevSeq = u.Seq
		if u.isLoad() {
			loads++
		}
		if u.isStore() {
			stores++
		}
	}
	if loads != c.lqCount {
		c.paranoiac("lqCount=%d but ROB holds %d loads", c.lqCount, loads)
	}
	if stores != c.sqCount {
		c.paranoiac("sqCount=%d but ROB holds %d stores", c.sqCount, stores)
	}
	if c.sq.len() != c.sqCount {
		c.paranoiac("store queue holds %d entries, sqCount=%d", c.sq.len(), c.sqCount)
	}
	prevSeq = 0
	for i := 0; i < c.sq.len(); i++ {
		u := c.sq.at(i)
		if !u.isStore() {
			c.paranoiac("SQ[%d] (seq %d) is not a store", i, u.Seq)
		}
		if i > 0 && u.Seq <= prevSeq {
			c.paranoiac("SQ age order broken: [%d].Seq=%d after %d", i, u.Seq, prevSeq)
		}
		prevSeq = u.Seq
	}
}

// Register states for checkPRF's scratch classification.
const (
	regUnseen uint8 = iota
	regFree
	regRAT
	regROBDest
)

// checkPRF: physical-register conservation. Main-pool registers are
// partitioned between the free list and the allocated set, the allocated
// set is exactly the architectural mapping plus one register per in-flight
// destination-writing ROB entry, and no register is in two places at once.
func (c *Core) checkPRF() {
	p := c.PRF
	if c.paranoiaReg == nil {
		c.paranoiaReg = make([]uint8, len(p.Val))
	}
	st := c.paranoiaReg
	clear(st)

	if p.inUse+len(p.free) != p.poolLen {
		c.paranoiac("PRF leak: inUse=%d + free=%d != pool=%d", p.inUse, len(p.free), p.poolLen)
	}
	for _, r := range p.free {
		if int(r) >= p.poolLen {
			c.paranoiac("free list holds companion register p%d (pool=%d)", r, p.poolLen)
		}
		if st[r] == regFree {
			c.paranoiac("register p%d is on the free list twice", r)
		}
		st[r] = regFree
	}
	for a, r := range c.rat {
		switch st[r] {
		case regFree:
			c.paranoiac("RAT[r%d] maps to freed register p%d", a, r)
		case regRAT:
			c.paranoiac("RAT aliases: r%d maps to p%d, already mapped", a, r)
		}
		st[r] = regRAT
	}
	dests := 0
	for i := 0; i < c.rob.len(); i++ {
		u := c.rob.at(i)
		if !u.HasDest {
			continue
		}
		dests++
		if int(u.Prd) >= p.poolLen {
			c.paranoiac("ROB seq %d destination p%d is outside the main pool", u.Seq, u.Prd)
		}
		if st[u.Prd] == regFree {
			c.paranoiac("ROB seq %d destination p%d is on the free list", u.Seq, u.Prd)
		}
		if st[u.Prd] == regROBDest {
			c.paranoiac("register p%d is the destination of two in-flight uops", u.Prd)
		}
		// The newest in-flight writer of an arch register is also its RAT
		// mapping, so regRAT here is expected; only double-Prd is a fault.
		if st[u.Prd] != regRAT {
			st[u.Prd] = regROBDest
		}
		if st[u.PrevPrd] == regFree {
			c.paranoiac("ROB seq %d holds freed previous mapping p%d", u.Seq, u.PrevPrd)
		}
	}
	if p.inUse != isa.NumRegs+dests {
		c.paranoiac("PRF conservation: inUse=%d, want %d arch + %d ROB dests",
			p.inUse, isa.NumRegs, dests)
	}
}

// checkScheduler: the wakeup/select bookkeeping. Every live RS residency is
// registered in exactly one wakeup home (readyQ or one waiter list), no
// waiter list sits on an already-ready register, the occupancy counters
// match a ground-truth count of live entries, and the companion age list
// covers every live companion entry in fetch order.
func (c *Core) checkScheduler() {
	if c.paranoiaCnt == nil {
		c.paranoiaCnt = make(map[*Uop]int)
	}
	cnt := c.paranoiaCnt
	clear(cnt)

	liveMain, liveTEA := 0, 0
	for i, u := range c.rs {
		if u.rsStamp != c.rsStamps[i] || !u.InRS {
			continue
		}
		if u.TEA {
			liveTEA++
		} else {
			liveMain++
		}
		cnt[u] = 0
	}
	if liveMain != c.rsMainCount || liveTEA != c.rsTEACount {
		c.paranoiac("RS occupancy: counted %d main + %d TEA live, counters say %d + %d",
			liveMain, liveTEA, c.rsMainCount, c.rsTEACount)
	}

	if c.bitset {
		c.checkSchedulerBitset(cnt, liveMain+liveTEA)
		return
	}

	refs := 0
	for _, r := range c.readyQ {
		if !r.live() {
			continue
		}
		refs++
		if _, ok := cnt[r.u]; !ok {
			c.paranoiac("readyQ holds live seq %d not present in the RS list", r.u.Seq)
		}
		cnt[r.u]++
	}
	for preg, ws := range c.waiters {
		for _, r := range ws {
			if !r.live() {
				continue
			}
			if c.PRF.Ready[preg] {
				c.paranoiac("live seq %d waits on p%d, which is already ready (lost wakeup)",
					r.u.Seq, preg)
			}
			refs++
			if _, ok := cnt[r.u]; !ok {
				c.paranoiac("waiters[p%d] holds live seq %d not present in the RS list", preg, r.u.Seq)
			}
			cnt[r.u]++
		}
	}
	if refs != liveMain+liveTEA {
		c.paranoiac("wakeup registration: %d live refs for %d live RS entries",
			refs, liveMain+liveTEA)
	}
	for u, n := range cnt {
		if n != 1 {
			c.paranoiac("seq %d registered %d times across readyQ+waiters, want exactly 1", u.Seq, n)
		}
	}

	teaLive := 0
	var prevFetch uint64
	for i := c.teaAgeHead; i < len(c.teaAge); i++ {
		r := c.teaAge[i]
		if !r.live() {
			continue
		}
		teaLive++
		if r.u.FetchCycle < prevFetch {
			c.paranoiac("companion age list out of order: seq %d fetched at %d after %d",
				r.u.Seq, r.u.FetchCycle, prevFetch)
		}
		prevFetch = r.u.FetchCycle
	}
	if teaLive != c.rsTEACount {
		c.paranoiac("companion age list covers %d live entries, rsTEACount=%d",
			teaLive, c.rsTEACount)
	}
}

// checkSchedulerBitset: the bitset scheduler's redundant state. Every live RS
// entry (keys of cnt, re-derived from the shared rs list) owns exactly one
// slot whose cached fields match the uop, the free bitmap agrees with slot
// occupancy, every live entry is registered in exactly one wakeup home
// (readyList or one pwaiters list), no waiter sits on a ready register, the
// sorted prefix of readyList is in packed (age) order, main-thread entries in
// readyList have both sources ready (the monotonicity claim select's fast
// path relies on), and the packed companion age list covers every live
// companion entry in fetch order.
func (c *Core) checkSchedulerBitset(cnt map[*Uop]int, live int) {
	occupied := 0
	for i := range c.slots {
		s := &c.slots[i]
		freeBit := c.slotFree[i>>6]>>(uint(i)&63)&1 != 0
		if s.stamp == 0 {
			if !freeBit {
				c.paranoiac("slot %d is empty but marked allocated in the free bitmap", i)
			}
			continue
		}
		occupied++
		if freeBit {
			c.paranoiac("slot %d is occupied (stamp %d) but marked free in the bitmap", i, s.stamp)
		}
		u := s.u
		if u == nil {
			c.paranoiac("slot %d has stamp %d but no uop", i, s.stamp)
		}
		if _, ok := cnt[u]; !ok {
			c.paranoiac("slot %d holds seq %d, which is not live in the RS list", i, u.Seq)
		}
		if int(u.rsSlot) != i || u.rsStamp != s.stamp {
			c.paranoiac("slot %d disagrees with its uop: slot stamp %d, uop slot %d stamp %d",
				i, s.stamp, u.rsSlot, u.rsStamp)
		}
		if s.prs1 != u.Prs1 || s.prs2 != u.Prs2 || s.tea != u.TEA {
			c.paranoiac("slot %d cached operands/kind diverged from seq %d", i, u.Seq)
		}
	}
	if occupied != live {
		c.paranoiac("slot array holds %d residencies for %d live RS entries", occupied, live)
	}

	refLive := func(ref uint64) *schedSlot {
		s := &c.slots[ref&slotMask]
		if s.stamp != ref>>slotBits {
			return nil
		}
		return s
	}
	refs := 0
	if c.readySorted > len(c.readyList) {
		c.paranoiac("readySorted=%d exceeds readyList length %d", c.readySorted, len(c.readyList))
	}
	for i, ref := range c.readyList {
		if i > 0 && i < c.readySorted && ref < c.readyList[i-1] {
			c.paranoiac("readyList sorted prefix broken at %d (%d after %d)",
				i, ref, c.readyList[i-1])
		}
		s := refLive(ref)
		if s == nil {
			continue
		}
		refs++
		cnt[s.u]++
		if c.split && s.tea {
			c.paranoiac("companion seq %d in the main readyList with split-ready active", s.u.Seq)
		}
		if !s.tea && (!c.PRF.Ready[s.prs1] || !c.PRF.Ready[s.prs2]) {
			c.paranoiac("main seq %d in readyList with unready source (monotonicity violated)",
				s.u.Seq)
		}
	}
	if c.teaReadySorted > len(c.teaReadyList) {
		c.paranoiac("teaReadySorted=%d exceeds teaReadyList length %d",
			c.teaReadySorted, len(c.teaReadyList))
	}
	for i, ref := range c.teaReadyList {
		if i > 0 && i < c.teaReadySorted && ref < c.teaReadyList[i-1] {
			c.paranoiac("teaReadyList sorted prefix broken at %d (%d after %d)",
				i, ref, c.teaReadyList[i-1])
		}
		s := refLive(ref)
		if s == nil {
			continue
		}
		if !s.tea {
			c.paranoiac("main seq %d in the companion ready list", s.u.Seq)
		}
		refs++
		cnt[s.u]++
	}
	for _, ref := range c.sqParked {
		s := refLive(ref)
		if s == nil {
			continue
		}
		if !s.load || !s.u.sqBlocked {
			c.paranoiac("seq %d parked without a memoized SQ-blocked verdict", s.u.Seq)
		}
		if !c.PRF.Ready[s.prs1] || !c.PRF.Ready[s.prs2] {
			c.paranoiac("parked seq %d has an unready source (monotonicity violated)", s.u.Seq)
		}
		refs++
		cnt[s.u]++
	}
	for _, ref := range c.memParked {
		s := refLive(ref)
		if s == nil {
			continue
		}
		if !s.load || s.u.memWake == 0 {
			c.paranoiac("seq %d parked without a memoized MSHR-full verdict", s.u.Seq)
		}
		if c.memParkedWake == 0 || c.memParkedWake > s.u.memWake {
			c.paranoiac("parked seq %d wakes at %d but the pool wake is %d (lost wakeup)",
				s.u.Seq, s.u.memWake, c.memParkedWake)
		}
		if !c.PRF.Ready[s.prs1] || !c.PRF.Ready[s.prs2] {
			c.paranoiac("parked seq %d has an unready source (monotonicity violated)", s.u.Seq)
		}
		refs++
		cnt[s.u]++
	}
	for preg, ws := range c.pwaiters {
		for _, ref := range ws {
			s := refLive(ref)
			if s == nil {
				continue
			}
			if c.PRF.Ready[preg] {
				c.paranoiac("live seq %d waits on p%d, which is already ready (lost wakeup)",
					s.u.Seq, preg)
			}
			refs++
			cnt[s.u]++
		}
	}
	if refs != live {
		c.paranoiac("wakeup registration: %d live refs for %d live RS entries", refs, live)
	}
	for u, n := range cnt {
		if n != 1 {
			c.paranoiac("seq %d registered %d times across ready lists+parked+pwaiters, want exactly 1",
				u.Seq, n)
		}
	}

	teaLive := 0
	var prevFetch uint64
	for i := c.teaAgePHead; i < len(c.teaAgeP); i++ {
		s := refLive(c.teaAgeP[i])
		if s == nil {
			continue
		}
		teaLive++
		if s.u.FetchCycle < prevFetch {
			c.paranoiac("companion age list out of order: seq %d fetched at %d after %d",
				s.u.Seq, s.u.FetchCycle, prevFetch)
		}
		prevFetch = s.u.FetchCycle
	}
	if teaLive != c.rsTEACount {
		c.paranoiac("companion age list covers %d live entries, rsTEACount=%d",
			teaLive, c.rsTEACount)
	}
}

// checkCompletions: the heap (reference path) or occupancy bitmap (bitset
// path) mirrors the intrusive completion ring. The cheap every-cycle checks
// are counter-vs-mirror agreement and that nothing outstanding is already
// overdue; a periodic sweep walks the whole ring through the complNext links
// and re-verifies slot filing and the mirror in full.
func (c *Core) checkCompletions() {
	if c.bitset {
		if c.completionsPending == 0 {
			for w, word := range c.complMask {
				if word != 0 {
					c.paranoiac("completion bitmap word %d nonzero with nothing pending", w)
				}
			}
		}
	} else {
		if len(c.complHeap) != c.completionsPending {
			c.paranoiac("completion heap holds %d cycles, ring counter says %d",
				len(c.complHeap), c.completionsPending)
		}
		if len(c.complHeap) > 0 && c.complHeap[0] < c.Cycle {
			c.paranoiac("completion heap top %d is overdue (missed writeback)", c.complHeap[0])
		}
	}
	if c.Cycle%paranoiaRingPeriod != 0 {
		return
	}
	inRing := 0
	for slot := range c.complHead {
		occupied := c.complHead[slot] != nil
		if c.bitset {
			if bit := c.complMask[slot>>6]>>(uint(slot)&63)&1 != 0; bit != occupied {
				c.paranoiac("completion bitmap bit for slot %d is %v, ring occupancy is %v",
					slot, bit, occupied)
			}
		}
		for u := c.complHead[slot]; u != nil; u = u.complNext {
			inRing++
			if u.DoneAt < c.Cycle {
				c.paranoiac("ring slot %d holds seq %d due at %d, already past", slot, u.Seq, u.DoneAt)
			}
			if int(u.DoneAt%completionRing) != slot {
				c.paranoiac("seq %d due at %d filed in ring slot %d", u.Seq, u.DoneAt, slot)
			}
		}
	}
	if inRing != c.completionsPending {
		c.paranoiac("ring holds %d uops, counter says %d", inRing, c.completionsPending)
	}
	for i := 1; i < len(c.complHeap); i++ {
		if parent := (i - 1) / 2; c.complHeap[i] < c.complHeap[parent] {
			c.paranoiac("completion heap property broken at index %d", i)
		}
	}
}

// checkFrontend: the in-order frontend streams stay age-ordered — branch
// records, fetched blocks, and the rename pipe.
func (c *Core) checkFrontend() {
	var prevSeq uint64
	for i := 0; i < c.recList.len(); i++ {
		r := c.recList.at(i)
		if i > 0 && r.Seq <= prevSeq {
			c.paranoiac("branch record list out of order: [%d].Seq=%d after %d", i, r.Seq, prevSeq)
		}
		prevSeq = r.Seq
	}
	var prevBase uint64
	for i := 0; i < c.fetchQ.len(); i++ {
		b := c.fetchQ.at(i)
		if i > 0 && b.SeqBase < prevBase {
			c.paranoiac("fetch queue out of order: [%d].SeqBase=%d after %d", i, b.SeqBase, prevBase)
		}
		prevBase = b.SeqBase
	}
	prevSeq = 0
	for i := 0; i < c.frontQ.len(); i++ {
		u := c.frontQ.at(i)
		if i > 0 && u.Seq <= prevSeq {
			c.paranoiac("frontend pipe out of order: [%d].Seq=%d after %d", i, u.Seq, prevSeq)
		}
		prevSeq = u.Seq
	}
}
