package pipeline

// Event-driven wakeup/select scheduling for the reservation stations.
//
// The naive scheduler re-scans every RS entry every cycle to find ready
// candidates — O(RS) work per simulated cycle that dominates the simulator's
// wall-clock on big windows. Hardware does not do that and neither do we:
// each RS entry waits on (at most) one not-ready source register at a time,
// registered in a per-physical-register waiter list. The single place a
// register becomes ready (PRF.Write in the writeback stage) wakes its
// waiters; entries whose operands are all ready sit in readyQ, the only
// thing the select loop walks. Results are bit-identical to the full scan:
// selection still visits candidates in RS insertion order (restored by an
// insertion-order stamp), and blocked loads stay in readyQ so their
// per-cycle retry probes — and the cache counters those probes bump —
// happen exactly as before.
//
// Stale references are unavoidable with pooled uops: a squashed entry's
// pointer can be recycled into a brand-new RS entry while old lists still
// hold it. Every reference therefore carries the rsStamp the uop had when
// the reference was taken; a mismatch (or a cleared InRS) marks it dead.

// rsRef is a possibly-stale reference to an RS entry.
type rsRef struct {
	u     *Uop
	stamp uint64
}

// live reports whether the reference still denotes the same RS residency.
func (r rsRef) live() bool { return r.u.rsStamp == r.stamp && r.u.InRS }

// insertRS registers a just-renamed uop with the scheduler. The caller has
// already set InRS and the occupancy counts. The rs/rsStamps insertion-order
// list is shared by both scheduler implementations: flushes and companion
// squashes walk it, and it is the paranoia checker's ground truth.
func (c *Core) insertRS(u *Uop) {
	c.rsStampCtr++
	u.rsStamp = c.rsStampCtr
	c.rs = append(c.rs, u)
	c.rsStamps = append(c.rsStamps, u.rsStamp)
	// The rs list is compacted lazily (flushes do it for free); bound the
	// dead-entry overhead between flushes.
	if len(c.rs) > 2*(c.rsMainCount+c.rsTEACount)+64 {
		c.compactRS()
	}
	if c.bitset {
		c.insertRSBitset(u)
		return
	}
	if u.TEA {
		c.teaAge = append(c.teaAge, rsRef{u, u.rsStamp})
	}
	r := rsRef{u, u.rsStamp}
	if !c.PRF.Ready[u.Prs1] {
		c.waiters[u.Prs1] = append(c.waiters[u.Prs1], r)
	} else if !c.PRF.Ready[u.Prs2] {
		c.waiters[u.Prs2] = append(c.waiters[u.Prs2], r)
	} else {
		c.readyQ = append(c.readyQ, r)
	}
}

// wakeWaiters is called when register p transitions to ready: every entry
// waiting on it either moves on to its other (still unready) source or
// becomes a select candidate.
func (c *Core) wakeWaiters(p uint16) {
	if c.bitset {
		c.wakeWaitersBitset(p)
		return
	}
	ws := c.waiters[p]
	if len(ws) == 0 {
		return
	}
	c.waiters[p] = ws[:0]
	for _, r := range ws {
		if !r.live() {
			continue
		}
		u := r.u
		if !c.PRF.Ready[u.Prs1] {
			c.waiters[u.Prs1] = append(c.waiters[u.Prs1], r)
		} else if !c.PRF.Ready[u.Prs2] {
			c.waiters[u.Prs2] = append(c.waiters[u.Prs2], r)
		} else {
			c.readyQ = append(c.readyQ, r)
		}
	}
}

// compactRS drops dead entries from the insertion-ordered rs list.
func (c *Core) compactRS() {
	rs := c.rs[:0]
	stamps := c.rsStamps[:0]
	for i, u := range c.rs {
		if u.rsStamp != c.rsStamps[i] || !u.InRS {
			continue
		}
		rs = append(rs, u)
		stamps = append(stamps, c.rsStamps[i])
	}
	c.rs, c.rsStamps = rs, stamps
}

// selectReady compacts readyQ in place and restores RS insertion order,
// returning the candidate list for this cycle's select. Readiness is
// re-validated: a source register can be re-allocated (Ready goes false
// again) while a companion consumer still sits in the RS — its producer was
// squashed and the PR recycled. Matching the per-cycle full scan exactly,
// such an entry stalls again until the new producer writes, so it migrates
// back to that register's waiter list. Wakeups append in writeback order,
// so the queue is nearly sorted and the insertion sort is effectively
// linear.
func (c *Core) selectReady() []rsRef {
	q := c.readyQ[:0]
	for _, r := range c.readyQ {
		if !r.live() {
			continue
		}
		u := r.u
		if !c.PRF.Ready[u.Prs1] {
			c.waiters[u.Prs1] = append(c.waiters[u.Prs1], r)
			continue
		}
		if !c.PRF.Ready[u.Prs2] {
			c.waiters[u.Prs2] = append(c.waiters[u.Prs2], r)
			continue
		}
		q = append(q, r)
	}
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && q[j].stamp < q[j-1].stamp; j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
	c.readyQ = q
	return q
}

// selectCands adapts selectReady to the []*Uop candidate shape execute()
// consumes (the bitset path produces the same shape from packed refs).
func (c *Core) selectCands() []*Uop {
	q := c.selectReady()
	cands := c.candScratch[:0]
	for _, r := range q {
		cands = append(cands, r.u)
	}
	c.candScratch = cands
	return cands
}

// sweepCompanionTimeouts ages companion uops out of the RS once they have
// waited past companionRSTimeout (their producer was lost to a flush).
// teaAge holds companion entries in insertion order and FetchCycle never
// decreases along it, so only the oldest live entry can newly expire —
// exactly the entries the per-cycle full scan used to sweep, in the same
// order.
func (c *Core) sweepCompanionTimeouts() {
	for c.teaAgeHead < len(c.teaAge) {
		r := c.teaAge[c.teaAgeHead]
		if r.live() {
			if c.Cycle-r.u.FetchCycle <= companionRSTimeout {
				break
			}
			u := r.u
			u.Squashed = true
			u.InRS = false
			c.rsTEACount--
			c.comp.UopSquashed(u)
		}
		c.teaAgeHead++
	}
	if c.teaAgeHead == len(c.teaAge) {
		c.teaAge, c.teaAgeHead = c.teaAge[:0], 0
	}
}

// companionTimeoutHorizon returns the cycle at which the oldest live
// companion RS entry will be swept (0 = none in flight) — the idle-cycle
// scanner's wake source for veto-free windows containing companion uops.
func (c *Core) companionTimeoutHorizon() uint64 {
	for i := c.teaAgeHead; i < len(c.teaAge); i++ {
		if c.teaAge[i].live() {
			return c.teaAge[i].u.FetchCycle + companionRSTimeout + 1
		}
	}
	return 0
}
