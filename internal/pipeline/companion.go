package pipeline

import (
	"teasim/internal/isa"
	"teasim/internal/telemetry"
)

// Companion is a precomputation engine attached to the core — the TEA
// thread (internal/core) or the Branch Runahead baseline (internal/runahead).
// The pipeline calls the hooks; the companion drives its own fetch/rename in
// Tick and may insert uops into the shared backend and issue early flushes
// through the Core API.
type Companion interface {
	// OnBlock is called when the decoupled BP emits a fetch block.
	OnBlock(b *FetchBlock)
	// OnMainFetch is called for every main-thread instruction fetched.
	OnMainFetch(u *Uop)
	// OnRetire is called in program order for every retired instruction.
	OnRetire(u *Uop)
	// OnFlush is called after a flush; everything younger than seq is gone.
	// branchRenamed reports whether the flushed branch had already been
	// renamed by the main thread — if so the recovered main RAT is exactly
	// the program state at the branch; if not (a partial frontend flush),
	// the companion must recover from its own checkpoint (§IV-F).
	OnFlush(seq uint64, branchRenamed bool)
	// Tick runs once per cycle, after execute and before main rename, so the
	// companion can claim issue slots with priority (paper §IV-D).
	Tick()
	// OverridePrediction lets a companion override the branch predictor for
	// a conditional branch at fetch time — the mechanism prior work (Branch
	// Runahead) uses instead of early flushes. It is called for EVERY
	// conditional branch instance the decoupled BP walks (so the companion
	// can count instances); seq identifies the instance for flush rewinds.
	// ok=false keeps the TAGE prediction. The TEA thread never overrides
	// (§I: it relaxes exactly this constraint).
	OverridePrediction(pc uint64, seq uint64) (taken bool, ok bool)

	// Execution hooks for companion-owned uops in the shared backend.

	// LoadValue supplies the value for a companion load (e.g. the TEA store
	// data cache); ok=false means fall through to committed memory.
	LoadValue(addr uint64, size int) (uint64, bool)
	// OlderStorePending reports whether a companion store older than seq has
	// not executed yet; companion loads wait for it (store→load chains, e.g.
	// arguments passed through the stack, §III-D).
	OlderStorePending(seq uint64) bool
	// StoreExec consumes a companion store (TEA store data cache write).
	StoreExec(addr uint64, data uint64, size int)
	// BranchResolved delivers a companion branch outcome (same timestamp as
	// the main-thread branch); the companion decides whether to early-flush.
	BranchResolved(u *Uop, taken bool, target uint64)
	// UopExecuted is called when a companion uop finishes executing (normal
	// or squashed) — the refcount-freeing point.
	UopExecuted(u *Uop)
	// UopSquashed is called when a companion uop is squashed before it ever
	// issued (no UopExecuted will follow).
	UopSquashed(u *Uop)
	// PrecomputationWrong is called when a main-thread branch detects (via
	// the in-flight branch queue fail-safe) that its precomputed outcome was
	// wrong (§IV-G).
	PrecomputationWrong(pc uint64)

	// OnInterval is called at every telemetry interval boundary so the
	// companion can annotate the sample with its own per-interval metrics
	// (coverage, accuracy, Block Cache hit rate, Fill Buffer occupancy).
	// Only invoked when telemetry is attached; must not mutate companion
	// state that affects simulation.
	OnInterval(iv *telemetry.Interval)

	// Idle-cycle fast-forward contract (see skip.go and DESIGN.md §9).

	// Quiescent reports whether the companion provably cannot change any
	// simulation state at cycle now — its Tick would be a pure no-op apart
	// from per-cycle counters — plus the earliest future cycle at which it
	// can wake on its own (0 = no self-scheduled wake; external events such
	// as retires and flushes wake it implicitly because they end the idle
	// window). A conservative implementation may always return (false, 0),
	// which merely disables skipping while it is attached.
	Quiescent(now uint64) (idle bool, wakeAt uint64)
	// OnSkip tells a quiescent companion that n idle cycles were
	// fast-forwarded in one jump. It must apply exactly the per-cycle
	// bookkeeping (counters only) that n quiescent Ticks would have done.
	OnSkip(n uint64)
}

// NewCompanionUop hands a companion a recycled (zeroed) Uop to fill in.
// The pipeline's own recycle sites (retire, flush, the completion ring) all
// skip companion uops — their owner keeps pointers in its local queues — so
// the companion must hand each one back via RecycleCompanionUop when it
// drops its last reference.
func (c *Core) NewCompanionUop() *Uop { return c.pool.getUop() }

// InstMeta resolves the instruction and its class at pc, serving companion
// fetch from the predecoded template cache when the block cache is enabled
// (the decode itself is identical; templates just avoid recomputing the
// class per fetch). Returns ok=false outside the code segment — the same
// condition under which Prog.InstAt returns nil.
func (c *Core) InstMeta(pc uint64) (in *isa.Inst, cls isa.Class, ok bool) {
	if c.dec != nil {
		idx, ok := c.dec.Index(pc)
		if !ok {
			return nil, 0, false
		}
		t := &c.dec.Tmpl[idx]
		return t.In, t.Cls, true
	}
	in = c.Prog.InstAt(pc)
	if in == nil {
		return nil, 0, false
	}
	return in, in.Class(), true
}

// RecycleCompanionUop returns a companion-owned uop to the shared pool.
// The caller must have removed it from every structure that could still
// reach it (its frontend queue, in-flight list, the shared RS / completion
// ring). Double-recycles are absorbed by the pool's once-only guard.
func (c *Core) RecycleCompanionUop(u *Uop) { c.pool.putUop(u) }

// nopCompanion is used when no precomputation engine is attached.
type nopCompanion struct{}

func (nopCompanion) OnBlock(*FetchBlock)  {}
func (nopCompanion) OnMainFetch(*Uop)     {}
func (nopCompanion) OnRetire(*Uop)        {}
func (nopCompanion) OnFlush(uint64, bool) {}
func (nopCompanion) Tick()                {}
func (nopCompanion) OverridePrediction(uint64, uint64) (bool, bool) {
	return false, false
}
func (nopCompanion) LoadValue(uint64, int) (uint64, bool) { return 0, false }
func (nopCompanion) OlderStorePending(uint64) bool        { return false }
func (nopCompanion) StoreExec(uint64, uint64, int)        {}
func (nopCompanion) BranchResolved(*Uop, bool, uint64)    {}
func (nopCompanion) UopExecuted(*Uop)                     {}
func (nopCompanion) UopSquashed(*Uop)                     {}
func (nopCompanion) PrecomputationWrong(uint64)           {}
func (nopCompanion) OnInterval(*telemetry.Interval)       {}
func (nopCompanion) Quiescent(uint64) (bool, uint64)      { return true, 0 }
func (nopCompanion) OnSkip(uint64)                        {}
