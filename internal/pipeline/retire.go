package pipeline

import (
	"fmt"

	"teasim/internal/isa"
)

// retire commits up to RetireWidth instructions in order from the ROB head:
// stores write the data cache and architectural memory, branches train the
// predictor, freed physical registers return to the pool, and (under co-sim)
// every instruction is checked against the golden functional model.
func (c *Core) retire() error {
	for n := 0; n < c.Cfg.RetireWidth && c.rob.len() > 0; n++ {
		u := c.rob.front()
		if !u.Executed {
			c.Stats.RetireStallROB++
			return nil
		}
		if u.isStore() {
			if _, ok := c.Hier.StoreCommit(u.Addr, c.Cycle); !ok {
				return nil // MSHRs full; retry next cycle
			}
			// Self-modifying code is asserted absent (no workload writes its
			// own code segment): the decoded-block cache is built once per
			// program and never invalidated, so a store into the code segment
			// would silently desynchronize it.
			if sz := uint64(u.In.MemBytes()); u.Addr < c.codeEnd && u.Addr+sz > c.codeBase {
				return fmt.Errorf(
					"pipeline: self-modifying store at %#x into code segment [%#x,%#x) (seq %d): unsupported with the decoded-block cache",
					u.Addr, c.codeBase, c.codeEnd, u.Seq)
			}
			c.Mem.Write(u.Addr, u.StoreData, u.In.MemBytes())
			if c.sq.len() == 0 || c.sq.front() != u {
				return fmt.Errorf("pipeline: SQ head mismatch at retire (seq %d)", u.Seq)
			}
			c.sq.popFront()
			c.sqCount--
			c.storeEpoch++
		}
		if u.isLoad() {
			c.lqCount--
		}

		if c.gold != nil {
			if err := c.cosimCheck(u); err != nil {
				return err
			}
		}

		if u.isBranch() {
			rec := u.Rec
			c.BP.Train(&rec.Pred, u.In, rec.ActualTaken, rec.ActualTarget)
			if u.In.IsCondBranch() {
				c.Stats.CondBranches++
				if rec.WasMispred {
					c.Stats.CondMispredicts++
				}
			} else if u.In.IsIndirect() {
				c.Stats.IndBranches++
				if rec.WasMispred {
					c.Stats.IndMispredicts++
				}
			} else if rec.WasMispred {
				// Direct jmp/call misfetch (BTB cold); counted as a target
				// misprediction for MPKI purposes.
				c.Stats.IndMispredicts++
			}
		}

		if u.HasDest {
			c.PRF.Free(u.PrevPrd)
		}
		c.rob.popFront()
		c.Stats.Retired++
		if c.telem != nil {
			if c.telem.TraceOn(c.Cycle) {
				c.telemRetire(u)
			}
			if c.telem.IntervalDue(c.Stats.Retired) {
				c.telemInterval()
			}
		}
		c.comp.OnRetire(u) // companion reads u (and u.Rec) synchronously
		halt := u.In.Op == isa.OpHalt
		if u.Rec != nil {
			if c.recList.len() == 0 || c.recList.front() != u.Rec {
				return fmt.Errorf("pipeline: branch record list head mismatch (seq %d)", u.Seq)
			}
			c.recList.popFront()
			c.pool.putRec(u.Rec)
		}
		c.pool.putUop(u)
		if halt {
			c.halted = true
			return nil
		}
	}
	return nil
}

// cosimCheck steps the golden emulator and verifies the retiring uop matches
// its architectural effects exactly.
func (c *Core) cosimCheck(u *Uop) error {
	s, err := c.gold.Step()
	if err != nil {
		return fmt.Errorf("pipeline cosim: golden model error: %w", err)
	}
	if s.PC != u.PC {
		return fmt.Errorf("pipeline cosim: retired PC %#x, golden %#x (seq %d, cycle %d)",
			u.PC, s.PC, u.Seq, c.Cycle)
	}
	if u.HasDest {
		got := c.PRF.Val[u.Prd]
		if !s.WroteReg || got != s.RegVal {
			return fmt.Errorf("pipeline cosim: %v at %#x wrote r%d=%#x, golden %#x (seq %d, cycle %d)",
				u.In, u.PC, u.In.Rd, got, s.RegVal, u.Seq, c.Cycle)
		}
	}
	if u.In.IsStore() {
		want := s.MemVal
		data := u.StoreData
		if sz := u.In.MemBytes(); sz < 8 {
			data &= (1 << (8 * uint(sz))) - 1
			want &= (1 << (8 * uint(sz))) - 1
		}
		if !s.IsStore || s.MemAddr != u.Addr || data != want {
			return fmt.Errorf("pipeline cosim: store at %#x addr=%#x data=%#x, golden addr=%#x data=%#x",
				u.PC, u.Addr, data, s.MemAddr, want)
		}
	}
	if u.In.IsBranch() {
		if !s.IsBranch || s.Taken != u.Taken {
			return fmt.Errorf("pipeline cosim: branch at %#x taken=%v, golden %v", u.PC, u.Taken, s.Taken)
		}
		if u.Taken && s.Target != u.Target {
			return fmt.Errorf("pipeline cosim: branch at %#x target=%#x, golden %#x", u.PC, u.Target, s.Target)
		}
	}
	if u.In.Op == isa.OpHalt && !s.Halted {
		return fmt.Errorf("pipeline cosim: halt retired but golden model not halted")
	}
	return nil
}

// MemEquals reports whether the committed memory matches the golden model's
// memory at addr for n bytes (test helper; only valid with co-sim enabled).
func (c *Core) MemEquals(addr uint64, n int) bool {
	if c.gold == nil {
		return true
	}
	for i := 0; i < n; i++ {
		if c.Mem.Byte(addr+uint64(i)) != c.gold.Mem.Byte(addr+uint64(i)) {
			return false
		}
	}
	return true
}
