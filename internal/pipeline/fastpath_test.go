package pipeline

import (
	"strings"
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

func newIdleCore(t *testing.T) *Core {
	t.Helper()
	b := asm.NewBuilder()
	b.Halt()
	return New(DefaultConfig(), b.MustBuild())
}

// rsStage registers a fake ready RS entry with the scheduler (both source
// registers map to always-ready architectural r0).
func rsStage(c *Core, seq uint64) *Uop {
	u := c.pool.getUop()
	u.Seq = seq
	u.InRS = true
	c.rsMainCount++
	c.insertRS(u)
	return u
}

func rsDrop(c *Core, u *Uop) {
	u.InRS = false
	u.Squashed = true
	c.freeSlot(u)
	c.rsMainCount--
}

// TestBitsetSlotAllocLowestFirst: the slot bitmap hands out the lowest free
// slot, and freed slots are reused before fresh ones.
func TestBitsetSlotAllocLowestFirst(t *testing.T) {
	c := newIdleCore(t)
	if !c.bitset {
		t.Fatal("bitset scheduler not on by default")
	}
	a, b, d := rsStage(c, 1), rsStage(c, 2), rsStage(c, 3)
	if a.rsSlot != 0 || b.rsSlot != 1 || d.rsSlot != 2 {
		t.Fatalf("slots = %d,%d,%d, want 0,1,2", a.rsSlot, b.rsSlot, d.rsSlot)
	}
	rsDrop(c, b)
	e := rsStage(c, 4)
	if e.rsSlot != 1 {
		t.Fatalf("freed slot not reused lowest-first: got %d, want 1", e.rsSlot)
	}
}

// TestBitsetSelectOrderIsAgeOrder: select returns candidates in RS insertion
// (age) order even when slot reuse makes slot numbers disagree with age —
// the packed (stamp<<16|slot) refs sort by stamp, never by slot.
func TestBitsetSelectOrderIsAgeOrder(t *testing.T) {
	c := newIdleCore(t)
	a, b, d := rsStage(c, 10), rsStage(c, 11), rsStage(c, 12)
	_ = a
	if got := c.selectCandsBitset(); len(got) != 3 {
		t.Fatalf("select returned %d candidates, want 3", len(got))
	}
	// Squash the middle entry; the next insert reuses its (lower) slot.
	rsDrop(c, b)
	e := rsStage(c, 13)
	if e.rsSlot >= d.rsSlot {
		t.Fatalf("test premise broken: e slot %d not below d slot %d", e.rsSlot, d.rsSlot)
	}
	got := c.selectCandsBitset()
	want := []uint64{10, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("select returned %d candidates, want %d", len(got), len(want))
	}
	for i, u := range got {
		if u.Seq != want[i] {
			t.Fatalf("candidate %d has seq %d, want %d (age order violated)", i, u.Seq, want[i])
		}
	}
	// The compacted list survives as the sorted prefix.
	if c.readySorted != len(c.readyList) {
		t.Fatalf("readySorted=%d, list=%d", c.readySorted, len(c.readyList))
	}
}

// TestComplNextWake: the completion bitmap scan matches the heap-top
// semantics — veto when due now, earliest future slot otherwise, circular
// wraparound included.
func TestComplNextWake(t *testing.T) {
	c := newIdleCore(t)
	set := func(slot int) { c.complMask[slot>>6] |= 1 << uint(slot&63) }
	clearAll := func() { c.complMask = [completionRing / 64]uint64{} }

	if at, ok := c.complNextWake(); !ok || at != 0 {
		t.Fatalf("empty ring: got (%d,%v), want (0,true)", at, ok)
	}
	set(0) // due at the current cycle (Cycle=0): veto
	if _, ok := c.complNextWake(); ok {
		t.Fatal("completion due now did not veto idleness")
	}
	clearAll()
	set(100)
	if at, ok := c.complNextWake(); !ok || at != 100 {
		t.Fatalf("slot 100: got (%d,%v), want (100,true)", at, ok)
	}
	clearAll()
	set(63) // same word as cur=0, last bit
	if at, ok := c.complNextWake(); !ok || at != 63 {
		t.Fatalf("slot 63: got (%d,%v), want (63,true)", at, ok)
	}
	// Wraparound: cur near the end of the ring, completion near the start.
	clearAll()
	c.Cycle = 16380
	set(5)
	if at, ok := c.complNextWake(); !ok || at != 16380+(5-16380+completionRing) {
		t.Fatalf("wraparound: got (%d,%v)", at, ok)
	}
	// Same word, bit below cur: must wrap the whole ring, not go backwards.
	clearAll()
	c.Cycle = 70 // word 1, bit 6
	set(65)
	if at, ok := c.complNextWake(); !ok || at != 70+(65-70+completionRing) {
		t.Fatalf("same-word wrap: got (%d,%v), want (%d,true)", at, ok, 70+(65-70+completionRing))
	}
}

// TestSelfModifyingStoreRejected: the decoded-block cache is valid only for
// immutable code, so a store into the code segment must abort the run.
func TestSelfModifyingStoreRejected(t *testing.T) {
	b := asm.NewBuilder()
	b.LiU(isa.R1, asm.DefaultCodeBase)
	b.Li(isa.R2, 1)
	b.St(isa.R1, 0, isa.R2)
	b.Halt()
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000
	c := New(cfg, b.MustBuild())
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "self-modifying") {
		t.Fatalf("store into the code segment did not error: %v", err)
	}
}
