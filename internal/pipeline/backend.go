package pipeline

import (
	"slices"

	"teasim/internal/emu"
	"teasim/internal/isa"
)

// DebugTEA prints the first N uop completions within [DebugSeqLo,
// DebugSeqHi] (test diagnostics).
var DebugTEA int

// DebugSeqLo and DebugSeqHi bound the DebugTEA trace window.
var DebugSeqLo, DebugSeqHi uint64

// completionRing bounds how far in the future a uop may complete. DRAM
// backlogs stay well under this; exceeding it is a simulator bug.
const completionRing = 16384

// companionRSTimeout sweeps companion uops that have been waiting in the
// reservation stations implausibly long (their producer was lost to a flush).
const companionRSTimeout = 1024

// execute is the select/dispatch stage: it binds ready uops to execution
// ports (TEA-priority, then oldest first), reads operand values, computes
// results, and schedules writeback. Candidates come from the event-driven
// readyQ (see sched.go) rather than a full RS scan; selectReady restores
// insertion order, so port binding matches the scan exactly.
func (c *Core) execute() {
	aluFree := c.Cfg.ALUPorts
	fpFree := c.Cfg.FPPorts
	memFree := c.Cfg.LDPorts + c.Cfg.LDSTPorts // load-capable slots
	stFree := c.Cfg.LDSTPorts                  // store-capable slots

	// Companion uops can wait on a register whose producer vanished in a
	// flush (the shadow RAT is only a snapshot); sweep them out instead of
	// letting them pin RS entries forever.
	var cands, teaCands []*Uop
	if c.bitset {
		c.sweepCompanionTimeoutsBitset()
		cands = c.selectCandsBitset()
		if c.split {
			if c.rsTEACount > 0 {
				teaCands = c.selectTEACandsBitset()
			} else if len(c.teaReadyList) > 0 {
				// No live companion residencies ⇒ every queued ref is stale;
				// drop them wholesale instead of compacting one by one.
				c.teaReadyList = c.teaReadyList[:0]
				c.teaReadySorted = 0
			}
		}
	} else {
		c.sweepCompanionTimeouts()
		cands = c.selectCands()
	}

	if c.rsTEACount == 0 {
		// No companion residencies ⇒ no companion candidates: both the
		// dedicated-engine companion loop and the priority pass over TEA
		// entries would scan cands without issuing anything. One main pass
		// is equivalent.
		for _, u := range cands {
			if aluFree == 0 && fpFree == 0 && memFree == 0 {
				break // every class is port-blocked; the rest are no-ops
			}
			c.tryIssue(u, &aluFree, &fpFree, &memFree, &stFree)
		}
		return
	}
	if c.split {
		// Split-ready fast path: the candidate groups arrive pre-separated
		// and stamp-sorted, so each pass is a straight batch drain — no
		// per-uop TEA filtering. Pass order matches the shared-list passes
		// below (companion first unless demoted); port budgets thread
		// through identically, so binding is bit-identical.
		if c.Cfg.CompanionDedicated {
			teaFree := c.Cfg.CompanionPorts
			for _, u := range teaCands {
				if teaFree == 0 {
					break
				}
				before := teaFree
				teaFree--
				// Reuse the class-checked path with generous per-class budgets.
				a, f, m, st := 1, 1, 1, 1
				c.tryIssue(u, &a, &f, &m, &st)
				if a == 1 && f == 1 && m == 1 && st == 1 {
					teaFree = before // did not issue (e.g. load retry)
				}
			}
			for _, u := range cands {
				if aluFree == 0 && fpFree == 0 && memFree == 0 {
					break // every class is port-blocked; the rest are no-ops
				}
				c.tryIssue(u, &aluFree, &fpFree, &memFree, &stFree)
			}
			return
		}
		first, second := teaCands, cands
		if c.Cfg.CompanionNoPriority {
			first, second = cands, teaCands
		}
		for _, u := range first {
			if aluFree == 0 && fpFree == 0 && memFree == 0 {
				return // every class is port-blocked; the rest are no-ops
			}
			c.tryIssue(u, &aluFree, &fpFree, &memFree, &stFree)
		}
		for _, u := range second {
			if aluFree == 0 && fpFree == 0 && memFree == 0 {
				return
			}
			c.tryIssue(u, &aluFree, &fpFree, &memFree, &stFree)
		}
		return
	}
	if c.Cfg.CompanionDedicated {
		// Dedicated engine: companion uops draw from their own execution
		// slots (any class); loads still contend for cache ports/MSHRs via
		// the shared hierarchy state.
		teaFree := c.Cfg.CompanionPorts
		for _, u := range cands {
			if !u.TEA || teaFree == 0 {
				continue
			}
			before := teaFree
			teaFree--
			// Reuse the class-checked path with generous per-class budgets.
			a, f, m, st := 1, 1, 1, 1
			c.tryIssue(u, &a, &f, &m, &st)
			if a == 1 && f == 1 && m == 1 && st == 1 {
				teaFree = before // did not issue (e.g. load retry)
			}
		}
		for _, u := range cands {
			if aluFree == 0 && fpFree == 0 && memFree == 0 {
				break // every class is port-blocked; the rest are no-ops
			}
			if u.TEA {
				continue
			}
			c.tryIssue(u, &aluFree, &fpFree, &memFree, &stFree)
		}
		return
	}
	for pass := 0; pass < 2; pass++ {
		teaPass := pass == 0
		if c.Cfg.CompanionNoPriority {
			teaPass = pass == 1
		}
		for _, u := range cands {
			if aluFree == 0 && fpFree == 0 && memFree == 0 {
				return // every class is port-blocked; the rest are no-ops
			}
			if u.TEA != teaPass {
				continue
			}
			c.tryIssue(u, &aluFree, &fpFree, &memFree, &stFree)
		}
	}
}

// tryIssue binds one candidate to a port if its class has one free.
func (c *Core) tryIssue(u *Uop, aluFree, fpFree, memFree, stFree *int) {
	switch u.Cls {
	case isa.ClassNop, isa.ClassHalt, isa.ClassALU, isa.ClassMul,
		isa.ClassDiv, isa.ClassBranch, isa.ClassJump:
		if *aluFree == 0 {
			return
		}
		*aluFree--
		c.issueALU(u)
	case isa.ClassFP:
		if *fpFree == 0 {
			return
		}
		*fpFree--
		c.issueALU(u)
	case isa.ClassLoad:
		if *memFree == 0 {
			return
		}
		if !c.issueLoad(u) {
			return // not issuable yet (store dependence / MSHR full)
		}
		*memFree--
	case isa.ClassStore:
		if *stFree == 0 || *memFree == 0 {
			return
		}
		*stFree--
		*memFree--
		c.issueStore(u)
	}
}

func (c *Core) latencyOf(u *Uop) uint64 {
	switch u.Cls {
	case isa.ClassMul:
		return c.Cfg.MulLat
	case isa.ClassDiv:
		return c.Cfg.DivLat
	case isa.ClassFP:
		if u.In.Op == isa.OpFDiv {
			return c.Cfg.FDivLat
		}
		return c.Cfg.FPLat
	default:
		return c.Cfg.ALULat
	}
}

// issueALU handles every non-memory class (including branches and nops).
func (c *Core) issueALU(u *Uop) {
	v1, v2 := c.PRF.Val[u.Prs1], c.PRF.Val[u.Prs2]
	if u.isBranch() {
		u.Taken, u.Target = emu.BranchOutcome(u.In, v1, v2)
	}
	if val, ok := emu.Eval(u.In, v1, v2, u.PC); ok {
		u.Val = val
	}
	c.scheduleDone(u, c.Cycle+c.latencyOf(u))
}

// issueLoad executes a load: effective address, store-queue disambiguation
// (main thread only — TEA loads bypass the LSQ and consult the TEA store
// data cache), then the D-cache. Returns false if the load must retry.
func (c *Core) issueLoad(u *Uop) bool {
	if !u.TEA && u.sqBlocked && u.sqEpoch == c.storeEpoch {
		return false // memoized disambiguation verdict still valid
	}
	addr := emu.EffAddr(u.In, c.PRF.Val[u.Prs1])
	size := u.In.MemBytes()
	u.Addr = addr

	if u.TEA {
		if c.comp.OlderStorePending(u.Seq) {
			return false // wait for the chain's producing store
		}
		if v, ok := c.comp.LoadValue(addr, size); ok {
			u.Val = v
			c.scheduleDone(u, c.Cycle+2) // TEA store-cache forward
			return true
		}
		res, ok := c.Hier.Load(addr, c.Cycle+1)
		if !ok {
			return false
		}
		u.Val = c.Mem.Read(addr, size)
		c.scheduleDone(u, res.ReadyAt)
		return true
	}

	// Conservative ordering: wait until every older store in the SQ has its
	// address; forward from the youngest containing store. A "blocked"
	// verdict is memoized against the SQ epoch: until a store executes,
	// commits, or the SQ population changes, the rescan would reach the
	// same verdict, so the per-cycle retry skips it (the probes that DO
	// have side effects — forwards and cache accesses — are never cached).
	var fwd *Uop
	for i := c.sq.len() - 1; i >= 0; i-- {
		s := c.sq.at(i)
		if s.Squashed || s.Seq >= u.Seq {
			continue
		}
		if !s.Executed {
			u.sqEpoch, u.sqBlocked = c.storeEpoch, true
			return false // older store address unknown; retry
		}
		ssz := s.In.MemBytes()
		if s.Addr+uint64(ssz) <= addr || addr+uint64(size) <= s.Addr {
			continue // disjoint
		}
		if s.Addr <= addr && addr+uint64(size) <= s.Addr+uint64(ssz) {
			fwd = s
			break // youngest containing store wins
		}
		u.sqEpoch, u.sqBlocked = c.storeEpoch, true
		return false // partial overlap: wait until the store commits
	}
	if fwd != nil {
		shift := (addr - fwd.Addr) * 8
		v := fwd.StoreData >> shift
		if size < 8 {
			v &= (1 << (8 * uint(size))) - 1
		}
		u.Val = v
		c.Stats.StoreForwards++
		c.scheduleDone(u, c.Cycle+2)
		return true
	}
	res, ok := c.Hier.Load(addr, c.Cycle+1)
	if !ok {
		// MSHRs full. Memoize the earliest retry cycle that could succeed:
		// the probe stays rejected until an outstanding L1D or LLC fill
		// completes (a probe at cycle F sees the F-completing fill's MSHR as
		// free, so the retry tick is F-1). The wake is conservative — the
		// earliest fill may free the wrong level — but an early retry just
		// re-parks; see selectCandsBitset.
		f := c.Hier.L1D.NextFill(c.Cycle + 1)
		if l := c.Hier.LLC.NextFill(c.Cycle + 1); l != 0 && (f == 0 || l < f) {
			f = l
		}
		if f != 0 {
			u.memWake = f - 1
		}
		return false
	}
	u.Val = c.Mem.Read(addr, size)
	c.Stats.LoadsExecuted++
	c.scheduleDone(u, res.ReadyAt)
	return true
}

// issueStore computes a store's address and data into its SQ entry; the
// cache write happens at retirement. TEA stores go to the store data cache.
func (c *Core) issueStore(u *Uop) {
	u.Addr = emu.EffAddr(u.In, c.PRF.Val[u.Prs1])
	u.StoreData = c.PRF.Val[u.Prs2]
	c.scheduleDone(u, c.Cycle+1)
}

func (c *Core) scheduleDone(u *Uop, at uint64) {
	u.Issued = true
	u.DoneAt = at
	u.InRS = false
	if u.TEA {
		c.rsTEACount--
		c.Stats.CompanionUops++
	} else {
		c.rsMainCount--
		c.Stats.ExecutedUops++
	}
	if at-c.Cycle >= completionRing {
		panic("pipeline: completion beyond ring horizon")
	}
	slot := at % completionRing
	u.complNext = c.complHead[slot]
	c.complHead[slot] = u
	c.completionsPending++
	if c.bitset {
		c.freeSlot(u)
		c.complMask[slot>>6] |= 1 << uint(slot&63)
	} else {
		c.complPush(at)
	}
}

// complPush records a scheduled completion cycle in the min-heap mirror of
// the ring (manual sift-up: container/heap would cost an interface call and
// an allocation per op on the hottest path in the simulator).
func (c *Core) complPush(at uint64) {
	h := append(c.complHeap, at)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	c.complHeap = h
}

// complPop removes the heap minimum.
func (c *Core) complPop() {
	h := c.complHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	c.complHeap = h
}

// complete is the writeback stage: results become architecturally visible
// to the scheduler, branches resolve (possibly flushing), and companion
// uops notify their owner. Oldest-first so the oldest misprediction wins.
func (c *Core) complete() {
	slot := c.Cycle % completionRing
	head := c.complHead[slot]
	if head == nil {
		return
	}
	c.complHead[slot] = nil
	list := c.complScratch[:0]
	for u := head; u != nil; u = u.complNext {
		list = append(list, u)
	}
	// The intrusive push prepends, so the walk yields newest-first; restore
	// scheduling (FIFO) order. Seq alone is NOT a total order here — a
	// companion uop shares its Seq with its main-thread twin — so the sort
	// below resolves ties by input position and must see the same input
	// order the slice-based ring produced.
	for i, j := 0, len(list)-1; i < j; i, j = i+1, j-1 {
		list[i], list[j] = list[j], list[i]
	}
	c.complScratch = list
	c.completionsPending -= len(list)
	if c.bitset {
		c.complMask[slot>>6] &^= 1 << uint(slot&63)
	} else {
		// Everything scheduled at or before this cycle drains now; drop the
		// heap mirror's stale minimums so its top stays the next writeback.
		for len(c.complHeap) > 0 && c.complHeap[0] <= c.Cycle {
			c.complPop()
		}
	}
	// Seqs are unique, so this unstable sort is deterministic; unlike
	// sort.Slice it does not allocate a closure + swapper per call. Most
	// cycles drain one or two uops: those sizes skip the sort machinery.
	// The len==2 compare-swap leaves ties (a TEA uop and its main twin
	// share a Seq) in input order, exactly what the comparator's
	// tie-returns-+1 convention makes the library's small-n insertion sort
	// do — do not "simplify" the big-n case to a stable sort, or tie order
	// (and bit-identity) changes for lists the library partitions.
	switch {
	case len(list) <= 1:
	case len(list) == 2:
		if list[0].Seq > list[1].Seq {
			list[0], list[1] = list[1], list[0]
		}
	default:
		slices.SortFunc(list, func(a, b *Uop) int {
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		})
	}
	for _, u := range list {
		if u.Squashed {
			if u.TEA {
				c.comp.UopExecuted(u)
			} else {
				c.pool.putUop(u)
			}
			continue
		}
		u.Executed = true
		if u.Cls == isa.ClassStore && !u.TEA {
			c.storeEpoch++ // a store's address became known
		}
		if u.HasDest {
			c.PRF.Write(u.Prd, u.Val)
			c.wakeWaiters(u.Prd)
		}
		if DebugTEA > 0 && u.Seq >= DebugSeqLo && u.Seq <= DebugSeqHi {
			DebugTEA--
			who := "MAIN"
			if u.TEA {
				who = "TEA "
			}
			println(who, "cyc", int(c.Cycle), "seq", int(u.Seq), u.In.String(),
				"v1", int64(c.PRF.Val[u.Prs1]), "val", int64(u.Val), "addr", int64(u.Addr), "sq", u.Squashed)
		}
		if u.TEA {
			if u.isStore() {
				c.comp.StoreExec(u.Addr, u.StoreData, u.In.MemBytes())
			}
			if u.isBranch() {
				c.comp.BranchResolved(u, u.Taken, u.Target)
			}
			c.comp.UopExecuted(u)
			continue
		}
		if u.isBranch() {
			c.resolveBranch(u)
		}
	}
}

// resolveBranch compares a main-thread branch's computed outcome against the
// (possibly TEA-corrected) fetch stream and flushes on mismatch.
func (c *Core) resolveBranch(u *Uop) {
	rec := u.Rec
	rec.Resolved = true
	rec.ActualTaken = u.Taken
	rec.ActualTarget = u.Target
	rec.ResolveCycle = c.Cycle
	rec.WasMispred = rec.actualNext() != rec.OrigNext

	if rec.Precomputed {
		wrong := rec.PreTaken != u.Taken || (u.Taken && rec.PreTarget != u.Target)
		if wrong {
			c.comp.PrecomputationWrong(rec.PC)
		}
	}
	if rec.actualNext() != rec.PredNext {
		c.Stats.Flushes++
		c.flushAfter(u.Seq, rec.actualNext(), rec, u.Taken, u.Target)
	}
}
