package pipeline

// Object pools for the high-churn simulator records (uops, branch records,
// fetch blocks). The simulator allocates several objects per simulated cycle;
// recycling them keeps the Go GC out of the measurement loop.
//
// Recycle discipline (enforced by the call sites):
//   - a Uop returns to the pool exactly once: at retirement, when a
//     squashed-but-issued uop drains from the completion ring, or at flush
//     time for squashed uops that never issued;
//   - a BranchRec returns when it leaves the in-flight branch queue
//     (retirement or flush);
//   - a FetchBlock returns when it leaves the fetch queue.
//
// Companions must not retain pointers to these records across calls; they
// copy the fields they need (the Fill Buffer does exactly that).

// Pool misses are served from slabs — chunks of poolSlab objects allocated
// at once — so a warming-up core costs a handful of allocations instead of
// one per record. The slabs are never returned to the GC while the core
// lives; in-flight populations are bounded by the machine's structure sizes,
// so the steady-state footprint is too.
const poolSlab = 256

type pools struct {
	uops   []*Uop
	recs   []*BranchRec
	blocks []*FetchBlock

	uopSlab   []Uop
	recSlab   []BranchRec
	blockSlab []FetchBlock
}

func (p *pools) getUop() *Uop {
	if n := len(p.uops); n > 0 {
		u := p.uops[n-1]
		p.uops = p.uops[:n-1]
		*u = Uop{}
		return u
	}
	if len(p.uopSlab) == 0 {
		p.uopSlab = make([]Uop, poolSlab)
	}
	u := &p.uopSlab[0]
	p.uopSlab = p.uopSlab[1:]
	return u
}

func (p *pools) putUop(u *Uop) {
	if u.pooled {
		return
	}
	u.pooled = true
	p.uops = append(p.uops, u)
}

func (p *pools) getRec() *BranchRec {
	if n := len(p.recs); n > 0 {
		r := p.recs[n-1]
		p.recs = p.recs[:n-1]
		*r = BranchRec{}
		return r
	}
	if len(p.recSlab) == 0 {
		p.recSlab = make([]BranchRec, poolSlab)
	}
	r := &p.recSlab[0]
	p.recSlab = p.recSlab[1:]
	return r
}

func (p *pools) putRec(r *BranchRec) {
	if r.pooled {
		return
	}
	r.pooled = true
	p.recs = append(p.recs, r)
}

func (p *pools) getBlock() *FetchBlock {
	if n := len(p.blocks); n > 0 {
		b := p.blocks[n-1]
		p.blocks = p.blocks[:n-1]
		br := b.Branches[:0]
		*b = FetchBlock{Branches: br}
		return b
	}
	if len(p.blockSlab) == 0 {
		p.blockSlab = make([]FetchBlock, poolSlab)
	}
	b := &p.blockSlab[0]
	p.blockSlab = p.blockSlab[1:]
	return b
}

func (p *pools) putBlock(b *FetchBlock) {
	if b.pooled {
		return
	}
	b.pooled = true
	p.blocks = append(p.blocks, b)
}
