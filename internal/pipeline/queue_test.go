package pipeline

import (
	"testing"
	"testing/quick"
)

func TestQueueBasics(t *testing.T) {
	var q queue[int]
	if q.len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.push(1)
	q.push(2)
	q.push(3)
	if q.len() != 3 || q.front() != 1 || q.at(2) != 3 {
		t.Fatalf("queue state wrong: len=%d", q.len())
	}
	if got := q.popFront(); got != 1 {
		t.Fatalf("pop = %d", got)
	}
	q.truncFrom(1) // keep only element 2
	if q.len() != 1 || q.front() != 2 {
		t.Fatalf("after trunc: len=%d", q.len())
	}
	q.clear()
	if q.len() != 0 {
		t.Fatal("clear failed")
	}
}

// Property: a queue behaves exactly like a reference slice under a random
// sequence of push/pop/truncate operations, including across the internal
// compaction threshold.
func TestQueueMatchesReferenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q queue[int]
		var ref []int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // push (biased: growth exercises compaction)
				q.push(next)
				ref = append(ref, next)
				next++
			case 2: // pop
				if len(ref) > 0 {
					if q.popFront() != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 3: // truncate tail at a pseudo-random point
				if len(ref) > 0 {
					k := int(op) % len(ref)
					q.truncFrom(k)
					ref = ref[:k]
				}
			}
			if q.len() != len(ref) {
				return false
			}
			for i, v := range ref {
				if q.at(i) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueCompactionReusesStorage(t *testing.T) {
	var q queue[int]
	for i := 0; i < 1000; i++ {
		q.push(i)
	}
	for i := 0; i < 900; i++ {
		q.popFront()
	}
	// After heavy popping the head index must have been compacted away.
	if q.head > len(q.buf) {
		t.Fatal("head escaped buffer")
	}
	if q.len() != 100 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < 100; i++ {
		if q.at(i) != 900+i {
			t.Fatalf("content lost at %d", i)
		}
	}
}

func TestPRFPartitionCap(t *testing.T) {
	p := NewPRF(64, 16)
	// 32 arch regs are pre-allocated; cap of 40 leaves 8 allocatable.
	p.SetMainCap(40)
	var got []uint16
	for p.CanAlloc() {
		got = append(got, p.Alloc())
	}
	if len(got) != 8 {
		t.Fatalf("allocatable under cap = %d, want 8", len(got))
	}
	p.Free(got[0])
	if !p.CanAlloc() {
		t.Fatal("free did not restore headroom")
	}
	if p.ExtraBase() != 64 {
		t.Fatalf("extra base = %d", p.ExtraBase())
	}
}
