package pipeline

// rename moves rename-ready uops from the frontend pipe into the ROB and
// reservation stations, in order, allocating physical registers and
// load/store queue slots. The companion claims issue slots first (priority
// at Issue, paper §IV-D); main rename uses the remainder.
func (c *Core) rename() {
	width := c.Cfg.FrontWidth - c.issueSlotsUsed
	for width > 0 && c.frontQ.len() > 0 {
		u := c.frontQ.front()
		if u.FetchCycle+c.Cfg.FetchToRenameLat > c.Cycle {
			return // still in the frontend pipe
		}
		if c.rob.len() >= c.Cfg.ROBSize {
			return
		}
		if c.rsMainCount >= c.mainRSCap {
			return
		}
		hasDest := u.destValid // cached at fetch: HasDest() && Rd != R0
		if hasDest && !c.PRF.CanAlloc() {
			return
		}
		if u.isLoad() && c.lqCount >= c.Cfg.LQSize {
			return
		}
		if u.isStore() && c.sqCount >= c.Cfg.SQSize {
			return
		}

		c.frontQ.popFront()
		u.Prs1 = c.rat[u.In.Rs1]
		u.Prs2 = c.rat[u.In.Rs2]
		u.HasDest = hasDest
		if hasDest {
			u.PrevPrd = c.rat[u.In.Rd]
			u.Prd = c.PRF.Alloc()
			c.rat[u.In.Rd] = u.Prd
		}
		c.rob.push(u)
		u.InRS = true
		c.rsMainCount++
		c.insertRS(u)
		if u.isLoad() {
			c.lqCount++
		}
		if u.isStore() {
			c.sqCount++
			c.sq.push(u)
			c.storeEpoch++
		}
		width--
	}
}

// InsertCompanionUop places a companion (TEA) uop into the shared backend.
// It consumes one of the cycle's issue slots and one companion RS entry.
// Returns false if no slot or RS capacity is available this cycle.
func (c *Core) InsertCompanionUop(u *Uop) bool {
	if c.issueSlotsUsed >= c.Cfg.FrontWidth {
		return false
	}
	if c.rsTEACount >= c.teaRSCap {
		return false
	}
	c.issueSlotsUsed++
	c.rsTEACount++
	u.InRS = true
	u.TEA = true
	c.insertRS(u)
	return true
}

// IssueSlotsLeft reports how many of this cycle's 8 issue slots remain.
func (c *Core) IssueSlotsLeft() int { return c.Cfg.FrontWidth - c.issueSlotsUsed }

// SquashCompanionWaiting removes every companion uop still waiting in the
// reservation stations (used when the companion drains: waiting uops may
// depend on registers that will never become ready). Issued uops are left
// to complete through the normal writeback path.
func (c *Core) SquashCompanionWaiting() {
	rs := c.rs[:0]
	stamps := c.rsStamps[:0]
	for i, u := range c.rs {
		if u.rsStamp != c.rsStamps[i] || !u.InRS {
			continue
		}
		if u.TEA {
			u.Squashed = true
			u.InRS = false
			if c.bitset {
				c.freeSlot(u)
			}
			c.rsTEACount--
			c.comp.UopSquashed(u)
			continue
		}
		rs = append(rs, u)
		stamps = append(stamps, c.rsStamps[i])
	}
	c.rs, c.rsStamps = rs, stamps
}

// CompanionRSFree reports remaining companion RS capacity.
func (c *Core) CompanionRSFree() int { return c.teaRSCap - c.rsTEACount }
