package pipeline

import "teasim/internal/telemetry"

// Telemetry integration: when Config.Telemetry is set, the core emits
// structured trace events (retirements, flushes, early flushes) inside the
// collector's trace window and one time-series sample every IntervalPeriod
// retired instructions. With no collector attached — or with the null sink
// — every hook below reduces to a branch, keeping the hot path
// allocation-free (BenchmarkCorePerCycle guards this).
//
//	ring := telemetry.NewRing(4096)
//	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{Sink: ring})

// ivSnapshot remembers the cumulative counters at the previous interval
// boundary so samples carry deltas.
type ivSnapshot struct {
	cycles       uint64
	retired      uint64
	condMisp     uint64
	indMisp      uint64
	flushes      uint64
	earlyFlushes uint64
}

// telemRegister exposes pipeline occupancies and cumulative counters on the
// collector's registry; they ride along in every interval sample.
func (c *Core) telemRegister() {
	reg := c.telem.Registry()
	reg.GaugeFunc("pipeline.rob_occupancy", func() float64 { return float64(c.rob.len()) })
	reg.GaugeFunc("pipeline.rs_occupancy", func() float64 { return float64(c.rsMainCount + c.rsTEACount) })
	reg.GaugeFunc("pipeline.fetchq_blocks", func() float64 { return float64(c.fetchQ.len()) })
	reg.GaugeFunc("pipeline.fetched_uops", func() float64 { return float64(c.Stats.FetchedUops) })
	reg.GaugeFunc("pipeline.executed_uops", func() float64 { return float64(c.Stats.ExecutedUops) })
	reg.GaugeFunc("pipeline.companion_uops", func() float64 { return float64(c.Stats.CompanionUops) })
	reg.GaugeFunc("pipeline.resteers", func() float64 { return float64(c.Stats.ResteerDecode) })
}

// telemRetire emits one retire event. Callers must have checked
// c.telem.TraceOn(c.Cycle): event construction formats instruction text.
func (c *Core) telemRetire(u *Uop) {
	e := telemetry.Event{
		Cycle:  c.Cycle,
		Kind:   telemetry.EvRetire,
		Seq:    u.Seq,
		PC:     u.PC,
		Disasm: u.In.String(),
	}
	switch {
	case u.isBranch():
		e.Branch = true
		e.Taken = u.Taken
		if u.Taken {
			e.Target = u.Target
		}
		if u.Rec != nil && u.Rec.WasMispred {
			e.Mispredict = true
			e.EarlyFlushed = u.Rec.Precomputed && u.Rec.PreFlushed
		}
	case u.isLoad() || u.isStore():
		e.Mem = true
		e.Addr = u.Addr
	}
	c.telem.Emit(e)
}

// telemFlush emits one flush event (early reports a companion-triggered
// early flush). Callers must have checked TraceOn.
func (c *Core) telemFlush(seq, redirect uint64, early bool) {
	kind := telemetry.EvFlush
	if early {
		kind = telemetry.EvEarlyFlush
	}
	c.telem.Emit(telemetry.Event{
		Cycle:    c.Cycle,
		Kind:     kind,
		Seq:      seq,
		Redirect: redirect,
		ROB:      c.rob.len(),
		RS:       c.rsMainCount + c.rsTEACount,
		FQ:       c.fetchQ.len(),
	})
}

// telemInterval emits one time-series sample: core rates over the interval
// since the previous boundary, companion annotations (TEA coverage,
// accuracy, Block Cache hit rate, Fill Buffer occupancy), and the registry
// snapshot.
func (c *Core) telemInterval() {
	iv := c.telem.BeginInterval(c.Cycle, c.Stats.Retired)
	last := &c.ivLast
	iv.Cycles = c.Cycle - last.cycles
	iv.Instructions = c.Stats.Retired - last.retired
	if iv.Cycles > 0 {
		iv.IPC = float64(iv.Instructions) / float64(iv.Cycles)
	}
	misp := (c.Stats.CondMispredicts - last.condMisp) + (c.Stats.IndMispredicts - last.indMisp)
	if iv.Instructions > 0 {
		iv.MPKI = float64(misp) * 1000 / float64(iv.Instructions)
	}
	iv.Flushes = c.Stats.Flushes - last.flushes
	iv.EarlyFlushes = c.Stats.EarlyFlushes - last.earlyFlushes
	c.comp.OnInterval(iv)
	c.telem.EmitInterval()
	*last = ivSnapshot{
		cycles:       c.Cycle,
		retired:      c.Stats.Retired,
		condMisp:     c.Stats.CondMispredicts,
		indMisp:      c.Stats.IndMispredicts,
		flushes:      c.Stats.Flushes,
		earlyFlushes: c.Stats.EarlyFlushes,
	}
}
