package pipeline

import "teasim/internal/isa"

// PRF is the physical register file: values, readiness, and the main
// thread's free list. When a TEA companion is attached, an extra block of
// registers beyond the main pool is appended for the companion to manage
// with its own reference-counting scheme (the paper's partitioned PRs).
type PRF struct {
	Val   []uint64
	Ready []bool
	free  []uint16
	// mainCap limits how many main-pool registers may be in use; lowering it
	// below the pool size models the partition reserved for the TEA thread.
	inUse   int
	mainCap int
	poolLen int
}

// NewPRF builds a PRF with mainRegs in the main pool plus extraRegs appended
// for a companion. Arch registers are pre-mapped to PR 0..NumRegs-1.
func NewPRF(mainRegs, extraRegs int) *PRF {
	p := &PRF{
		Val:     make([]uint64, mainRegs+extraRegs),
		Ready:   make([]bool, mainRegs+extraRegs),
		poolLen: mainRegs,
		mainCap: mainRegs,
	}
	for i := 0; i < isa.NumRegs; i++ {
		p.Ready[i] = true
	}
	p.inUse = isa.NumRegs
	for i := mainRegs - 1; i >= isa.NumRegs; i-- {
		p.free = append(p.free, uint16(i))
	}
	return p
}

// SetMainCap adjusts the number of main-pool registers usable by the main
// thread (the TEA partition carve-out).
func (p *PRF) SetMainCap(n int) { p.mainCap = n }

// CanAlloc reports whether a main-pool register is available under the cap.
func (p *PRF) CanAlloc() bool { return len(p.free) > 0 && p.inUse < p.mainCap }

// Alloc takes a register from the main pool (caller checks CanAlloc).
func (p *PRF) Alloc() uint16 {
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.Ready[r] = false
	p.inUse++
	return r
}

// Free returns a main-pool register.
func (p *PRF) Free(r uint16) {
	p.free = append(p.free, r)
	p.inUse--
}

// ExtraBase returns the first register index of the companion block.
func (p *PRF) ExtraBase() int { return p.poolLen }

// Write sets a register value and marks it ready.
func (p *PRF) Write(r uint16, v uint64) {
	p.Val[r] = v
	p.Ready[r] = true
}
