package telemetry

import "sync/atomic"

// Heartbeat is a cheap cross-goroutine progress signal: the simulation loop
// publishes its cycle count at its cancellation-check boundaries, and a
// watchdog on another goroutine reads it to distinguish "slow but advancing"
// from "wedged". A heartbeat never influences simulated behavior — it is a
// monotonic counter the run loop was already maintaining, exposed.
//
// The zero value is ready to use.
type Heartbeat struct {
	cycle atomic.Uint64
	beats atomic.Uint64
}

// Beat publishes the current simulated cycle.
func (h *Heartbeat) Beat(cycle uint64) {
	h.cycle.Store(cycle)
	h.beats.Add(1)
}

// Load returns the number of beats so far and the last published cycle.
// A watchdog should key on the beat count: the cycle counter alone can
// legitimately stand still across runs (each run restarts at cycle 0).
func (h *Heartbeat) Load() (beats, cycle uint64) {
	return h.beats.Load(), h.cycle.Load()
}
