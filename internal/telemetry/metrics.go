// Package telemetry is the simulator's observability subsystem: a
// low-overhead metric registry (counters, gauges, histograms), a pluggable
// Sink interface for structured trace events and per-interval time-series
// samples, and a Collector that owns the per-run sampling state.
//
// Design constraints (see DESIGN.md "Telemetry"):
//
//   - The disabled path is free: a core with no Collector attached pays one
//     nil check per hook site.
//   - The null-sink path is allocation-free: all Event/Interval values are
//     scratch structs owned by the Collector and reused across emissions;
//     sinks that retain data (ring, recorder) copy what they keep.
//   - Sinks are not synchronized. One Collector (and therefore one Sink
//     instance) belongs to exactly one simulated core; parallel experiment
//     runs must use one sink per run.
package telemetry

import (
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// SyncCounter is a Counter safe for concurrent use. The simulator's own
// metrics stay on the unsynchronized Counter (one Registry per simulated
// core, by design); SyncCounter exists for request-level metrics shared
// across goroutines, like the serve daemon's admission and store counters.
type SyncCounter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *SyncCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *SyncCounter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *SyncCounter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d (which may be negative).
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Bounds[i]; one extra bucket counts the overflow.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (tens) and the common case hits
	// an early bucket; binary search is not worth the branch misses.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Buckets visits each bucket as (upper bound, count); the overflow bucket
// reports +Inf semantics via ok=false on bound.
func (h *Histogram) Buckets(visit func(bound float64, bounded bool, count uint64)) {
	for i, c := range h.counts {
		if i < len(h.bounds) {
			visit(h.bounds[i], true, c)
		} else {
			visit(0, false, c)
		}
	}
}

// Registry holds named metrics in registration order. Registration is
// idempotent by name within a kind; registering the same name as two
// different kinds panics (a programming error, not a runtime condition).
//
// Registry is not synchronized: it belongs to one simulated core, like the
// Collector that owns it.
type Registry struct {
	names []string
	kinds map[string]metricKind

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindFunc
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]metricKind),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

func (r *Registry) register(name string, k metricKind) bool {
	if have, ok := r.kinds[name]; ok {
		if have != k {
			panic("telemetry: metric " + name + " registered twice with different kinds")
		}
		return false
	}
	r.kinds[name] = k
	r.names = append(r.names, name)
	return true
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r.register(name, kindCounter) {
		r.counters[name] = &Counter{}
	}
	return r.counters[name]
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r.register(name, kindGauge) {
		r.gauges[name] = &Gauge{}
	}
	return r.gauges[name]
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds if needed (bounds are ignored on re-registration).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r.register(name, kindHistogram) {
		r.hists[name] = NewHistogram(bounds...)
	}
	return r.hists[name]
}

// GaugeFunc registers a callback sampled at every interval boundary. The
// callback form costs nothing on the hot path: components expose existing
// state (queue occupancies, cache counters) without maintaining a second
// counter. Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(name, kindFunc)
	r.funcs[name] = fn
}

// value returns the current value of the named metric (histograms report
// their mean).
func (r *Registry) value(name string) float64 {
	switch r.kinds[name] {
	case kindCounter:
		return float64(r.counters[name].Value())
	case kindGauge:
		return r.gauges[name].Value()
	case kindHistogram:
		return r.hists[name].Mean()
	case kindFunc:
		return r.funcs[name]()
	}
	return 0
}

// Visit calls visit for every metric's current value, in registration
// order. Histograms visit as their mean; use Histogram directly for bucket
// detail.
func (r *Registry) Visit(visit func(name string, value float64)) {
	for _, name := range r.names {
		visit(name, r.value(name))
	}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.names) }
