package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Sink consumes structured trace events and interval samples. The *Event
// and *Interval arguments are scratch storage owned by the caller and
// reused across calls: a sink that retains data must copy it.
//
// Sinks are not synchronized; one sink serves one simulated core.
type Sink interface {
	// Event receives one trace event (only inside the trace window).
	Event(e *Event)
	// Interval receives one time-series sample.
	Interval(iv *Interval)
	// Close flushes buffered output. The sink must not be used afterwards.
	Close() error
}

// NullSink discards everything. A Collector detects it and skips event
// construction entirely, so the null path stays allocation-free.
type NullSink struct{}

// Event discards e.
func (NullSink) Event(*Event) {}

// Interval discards iv.
func (NullSink) Interval(*Interval) {}

// Close does nothing.
func (NullSink) Close() error { return nil }

// JSONLSink writes one JSON object per event or interval to a writer:
//
//	{"type":"event","cycle":...,"kind":"retire",...}
//	{"type":"interval","index":0,"ipc":...,...}
//
// Output is buffered; call Close to flush.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

type jsonlEvent struct {
	Type string `json:"type"`
	*Event
}

type jsonlInterval struct {
	Type string `json:"type"`
	*Interval
}

// Event encodes e as one line.
func (s *JSONLSink) Event(e *Event) {
	if s.err == nil {
		s.err = s.enc.Encode(jsonlEvent{"event", e})
	}
}

// Interval encodes iv as one line.
func (s *JSONLSink) Interval(iv *Interval) {
	if s.err == nil {
		s.err = s.enc.Encode(jsonlInterval{"interval", iv})
	}
}

// Close flushes the buffer and returns the first error encountered.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// RingSink keeps the last N events in memory (a flight recorder) and every
// interval sample. Intended for tests, post-mortem debugging, and interval
// collection by the public API.
type RingSink struct {
	cap       int
	events    []Event
	next      int // eviction cursor, valid once len(events) == cap
	intervals []Interval
}

// NewRing builds a ring sink retaining the last cap events (cap <= 0 keeps
// no events, only intervals).
func NewRing(cap int) *RingSink {
	return &RingSink{cap: cap}
}

// Event copies e into the ring, evicting the oldest entry when full.
func (s *RingSink) Event(e *Event) {
	if s.cap <= 0 {
		return
	}
	if len(s.events) < s.cap {
		s.events = append(s.events, *e)
		return
	}
	s.events[s.next] = *e
	s.next++
	if s.next == s.cap {
		s.next = 0
	}
}

// Interval copies iv (deep, including Metrics).
func (s *RingSink) Interval(iv *Interval) {
	cp := *iv
	cp.Metrics = append([]Metric(nil), iv.Metrics...)
	s.intervals = append(s.intervals, cp)
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	if len(s.events) < s.cap || s.next == 0 {
		return append([]Event(nil), s.events...)
	}
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.next:]...)
	out = append(out, s.events[:s.next]...)
	return out
}

// Intervals returns every collected interval sample.
func (s *RingSink) Intervals() []Interval { return s.intervals }

// Close does nothing.
func (s *RingSink) Close() error { return nil }

// TextSink renders events as the human-readable one-line-per-event form
// used by the tracing example (the successor of the old printf trace):
//
//	[   60201] retire seq=181447 pc=0x41a8 beq r4, r0, +3 NT
//	[   60207] early-flush at seq=181466 redirect=0x41b4 (rob=122 rs=31 fq=2)
//
// Intervals render as a compact summary line. Output is buffered; call
// Close to flush.
type TextSink struct {
	w *bufio.Writer
}

// NewText builds a text sink over w.
func NewText(w io.Writer) *TextSink {
	return &TextSink{w: bufio.NewWriter(w)}
}

// Event renders e as one line.
func (s *TextSink) Event(e *Event) {
	fmt.Fprintf(s.w, "[%8d] ", e.Cycle)
	switch e.Kind {
	case EvRetire:
		switch {
		case e.Branch:
			out := "NT"
			if e.Taken {
				out = fmt.Sprintf("T->%#x", e.Target)
			}
			mark := ""
			if e.Mispredict {
				mark = " MISPRED"
				if e.EarlyFlushed {
					mark = " MISPRED(early-flushed)"
				}
			}
			fmt.Fprintf(s.w, "retire seq=%d pc=%#x %s %s%s", e.Seq, e.PC, e.Disasm, out, mark)
		case e.Mem:
			fmt.Fprintf(s.w, "retire seq=%d pc=%#x %s addr=%#x", e.Seq, e.PC, e.Disasm, e.Addr)
		default:
			fmt.Fprintf(s.w, "retire seq=%d pc=%#x %s", e.Seq, e.PC, e.Disasm)
		}
	default:
		fmt.Fprintf(s.w, "%s at seq=%d redirect=%#x (rob=%d rs=%d fq=%d)",
			e.Kind, e.Seq, e.Redirect, e.ROB, e.RS, e.FQ)
	}
	s.w.WriteByte('\n')
}

// Interval renders iv as one summary line.
func (s *TextSink) Interval(iv *Interval) {
	fmt.Fprintf(s.w, "[%8d] interval %d: retired=%d ipc=%.3f mpki=%.2f flushes=%d early=%d cov=%.0f%% acc=%.1f%% bc=%.0f%% fill=%d\n",
		iv.Cycle, iv.Index, iv.Retired, iv.IPC, iv.MPKI, iv.Flushes, iv.EarlyFlushes,
		100*iv.Coverage, 100*iv.Accuracy, 100*iv.BlockCacheHitRate, iv.FillBufOccupancy)
}

// Close flushes the buffer.
func (s *TextSink) Close() error { return s.w.Flush() }

// MultiSink fans every event and interval out to several sinks.
type MultiSink []Sink

// Multi combines sinks into one (nil entries are dropped).
func Multi(sinks ...Sink) Sink {
	var ms MultiSink
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	if len(ms) == 1 {
		return ms[0]
	}
	return ms
}

// Event forwards e to every sink.
func (m MultiSink) Event(e *Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Interval forwards iv to every sink.
func (m MultiSink) Interval(iv *Interval) {
	for _, s := range m {
		s.Interval(iv)
	}
}

// Close closes every sink, returning the first error.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
