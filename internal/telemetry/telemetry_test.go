package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flushes")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("flushes") != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := r.Gauge("occupancy")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}

	h := r.Histogram("saved", 10, 100)
	for _, v := range []float64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	var counts []uint64
	h.Buckets(func(_ float64, _ bool, n uint64) { counts = append(counts, n) })
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("bucket counts = %v, want [1 1 1]", counts)
	}

	occ := 42.0
	r.GaugeFunc("fn", func() float64 { return occ })

	var names []string
	var vals []float64
	r.Visit(func(n string, v float64) { names = append(names, n); vals = append(vals, v) })
	want := []string{"flushes", "occupancy", "saved", "fn"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("visit order %v, want %v (registration order)", names, want)
	}
	if vals[0] != 3 || vals[1] != 7 || vals[2] != 185 || vals[3] != 42 {
		t.Fatalf("visit values %v", vals)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic on kind conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Event(&Event{Cycle: 7, Kind: EvRetire, Seq: 1, PC: 0x40, Disasm: "add r1, r2, r3"})
	s.Event(&Event{Cycle: 9, Kind: EvEarlyFlush, Seq: 2, Redirect: 0x80, ROB: 3})
	s.Interval(&Interval{Index: 0, Cycle: 100, Retired: 50, IPC: 0.5,
		Metrics: []Metric{{Name: "m", Value: 1}}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if ev["type"] != "event" || ev["kind"] != "early-flush" || ev["redirect"] != float64(0x80) {
		t.Fatalf("unexpected event line: %v", ev)
	}
	var iv map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &iv); err != nil {
		t.Fatalf("line 3 is not JSON: %v", err)
	}
	if iv["type"] != "interval" || iv["ipc"] != 0.5 {
		t.Fatalf("unexpected interval line: %v", iv)
	}
}

func TestRingSinkWraparound(t *testing.T) {
	s := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		s.Event(&Event{Cycle: i})
	}
	evs := s.Events()
	if len(evs) != 3 || evs[0].Cycle != 3 || evs[2].Cycle != 5 {
		t.Fatalf("ring events = %+v, want cycles 3..5 oldest-first", evs)
	}
	// Interval deep copy: mutating the emitted scratch must not leak in.
	iv := Interval{Index: 1, Metrics: []Metric{{Name: "a", Value: 1}}}
	s.Interval(&iv)
	iv.Metrics[0].Value = 99
	if got := s.Intervals()[0].Metrics[0].Value; got != 1 {
		t.Fatalf("ring interval aliases caller storage (got %v)", got)
	}
}

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewText(&buf)
	s.Event(&Event{Cycle: 12, Kind: EvRetire, Seq: 3, PC: 0x40, Disasm: "beq r1, r0, +2",
		Branch: true, Taken: true, Target: 0x48, Mispredict: true})
	s.Event(&Event{Cycle: 13, Kind: EvRetire, Seq: 4, PC: 0x44, Disasm: "ld r2, 0(r1)",
		Mem: true, Addr: 0x1000})
	s.Event(&Event{Cycle: 14, Kind: EvFlush, Seq: 3, Redirect: 0x48, ROB: 1, RS: 2, FQ: 3})
	s.Event(&Event{Cycle: 15, Kind: EvEarlyFlush, Seq: 9, Redirect: 0x50})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"[      12] retire seq=3 pc=0x40 beq r1, r0, +2 T->0x48 MISPRED\n",
		"[      13] retire seq=4 pc=0x44 ld r2, 0(r1) addr=0x1000\n",
		"[      14] flush at seq=3 redirect=0x48 (rob=1 rs=2 fq=3)\n",
		"[      15] early-flush at seq=9 redirect=0x50 (rob=0 rs=0 fq=0)\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi(nil, a, b)
	m.Event(&Event{Cycle: 1})
	m.Interval(&Interval{Index: 0})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi sink did not fan out events")
	}
	if len(a.Intervals()) != 1 || len(b.Intervals()) != 1 {
		t.Fatal("multi sink did not fan out intervals")
	}
	if Multi(a) != Sink(a) {
		t.Fatal("single-sink Multi should return the sink itself")
	}
}

func TestCollectorTraceWindow(t *testing.T) {
	ring := NewRing(16)
	c := NewCollector(Config{Sink: ring, TraceStart: 10, TraceEnd: 20})
	for _, cyc := range []uint64{5, 10, 20, 21} {
		if c.TraceOn(cyc) {
			c.Emit(Event{Cycle: cyc, Kind: EvRetire})
		}
	}
	evs := ring.Events()
	if len(evs) != 2 || evs[0].Cycle != 10 || evs[1].Cycle != 20 {
		t.Fatalf("window produced %+v, want cycles 10 and 20", evs)
	}
}

func TestCollectorIntervalCursor(t *testing.T) {
	ring := NewRing(0)
	c := NewCollector(Config{Sink: ring, IntervalPeriod: 100})
	c.Registry().Counter("n").Add(7)
	if c.IntervalDue(99) {
		t.Fatal("interval due before the period elapsed")
	}
	if !c.IntervalDue(100) {
		t.Fatal("interval not due at the boundary")
	}
	iv := c.BeginInterval(500, 100)
	iv.IPC = 2.0
	c.EmitInterval()
	if c.IntervalDue(150) {
		t.Fatal("cursor did not advance")
	}
	got := ring.Intervals()
	if len(got) != 1 || got[0].IPC != 2.0 || got[0].Index != 0 {
		t.Fatalf("intervals = %+v", got)
	}
	if len(got[0].Metrics) != 1 || got[0].Metrics[0] != (Metric{Name: "n", Value: 7}) {
		t.Fatalf("registry snapshot = %+v", got[0].Metrics)
	}
}

// TestNullPathAllocationFree is the telemetry-side half of the hot-path
// guarantee: emitting events and intervals into a NullSink collector must
// not allocate (BenchmarkCorePerCycle enforces the pipeline side).
func TestNullPathAllocationFree(t *testing.T) {
	c := NewCollector(Config{Sink: NullSink{}, IntervalPeriod: 1})
	c.Registry().GaugeFunc("occ", func() float64 { return 1 })
	c.Registry().Counter("n")
	// Warm the Metrics backing array.
	c.BeginInterval(0, 0)
	c.EmitInterval()

	retired := uint64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		if c.TraceOn(5) {
			t.Fatal("null sink must disable tracing")
		}
		c.Emit(Event{Cycle: 5}) // stray call: must still be free
		if c.IntervalDue(retired) {
			iv := c.BeginInterval(retired*3, retired)
			iv.IPC = 0.33
			c.EmitInterval()
		}
		retired++
	})
	if allocs != 0 {
		t.Fatalf("null-sink path allocates %v per emission, want 0", allocs)
	}
}

// TestJSONLSinkBuffered ensures nothing reaches the writer before Close
// flushes (the sink must be safe to point at an unbuffered file).
func TestJSONLSinkBuffered(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Event(&Event{Cycle: 1})
	if buf.Len() != 0 && buf.Len() >= bufio.NewWriter(nil).Size() {
		t.Skip("bufio flushed early; nothing to assert")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close did not flush")
	}
}
