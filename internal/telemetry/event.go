package telemetry

import "strconv"

// EventKind classifies a structured trace event.
type EventKind uint8

// Event kinds.
const (
	// EvRetire is one retired instruction (in program order).
	EvRetire EventKind = iota
	// EvFlush is an execute-time misprediction flush (or decode re-steer).
	EvFlush
	// EvEarlyFlush is a companion-triggered early flush (§IV-F).
	EvEarlyFlush
	// EvJobFailure is an experiment-harness event: one job attempt died (by
	// panic, deadline, or hang watchdog). Emitted by the engine, not the
	// simulated core, so Cycle/Seq are zero; Job and Err identify the cell
	// and the failure, Attempt and BackoffMS distinguish a retried cell from
	// a first failure.
	EvJobFailure
	// EvCorruptRecord is a persistence-layer event: corrupt or torn-tail
	// journal/store records were dropped while opening a file. Job carries
	// the file path, Count the number of dropped records.
	EvCorruptRecord
)

// String returns the event kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EvRetire:
		return "retire"
	case EvFlush:
		return "flush"
	case EvEarlyFlush:
		return "early-flush"
	case EvJobFailure:
		return "job-failure"
	case EvCorruptRecord:
		return "corrupt-record"
	}
	return "event(" + strconv.Itoa(int(k)) + ")"
}

// MarshalJSON renders the kind as its wire name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, k.String()), nil
}

// Event is one structured trace event. Events passed to a Sink are scratch
// storage owned by the Collector: a sink that retains events beyond the
// call must copy them.
//
// Field applicability by kind (see DESIGN.md "Telemetry event schema"):
//
//   - retire: Seq, PC, Disasm always; Branch/Taken/Target/Mispredict/
//     EarlyFlushed for branches; Mem/Addr for loads and stores.
//   - flush, early-flush: Seq (the flushed branch), Redirect, and the
//     post-flush ROB/RS/FQ occupancies.
type Event struct {
	Cycle uint64    `json:"cycle"`
	Kind  EventKind `json:"kind"`
	Seq   uint64    `json:"seq"`

	// Retire fields.
	PC           uint64 `json:"pc,omitempty"`
	Disasm       string `json:"disasm,omitempty"`
	Branch       bool   `json:"branch,omitempty"`
	Taken        bool   `json:"taken,omitempty"`
	Target       uint64 `json:"target,omitempty"`
	Mispredict   bool   `json:"mispredict,omitempty"`
	EarlyFlushed bool   `json:"early_flushed,omitempty"`
	Mem          bool   `json:"mem,omitempty"`
	Addr         uint64 `json:"addr,omitempty"`

	// Flush fields.
	Redirect uint64 `json:"redirect,omitempty"`
	ROB      int    `json:"rob,omitempty"`
	RS       int    `json:"rs,omitempty"`
	FQ       int    `json:"fq,omitempty"`

	// Job-failure fields (EvJobFailure): the failed cell as
	// "workload/mode@spec" and the first line of its error. Attempt is the
	// 1-based attempt number and BackoffMS the cumulative retry backoff the
	// cell has accrued, so traces distinguish retried cells from first
	// failures. For EvCorruptRecord, Job is the file path instead.
	Job       string `json:"job,omitempty"`
	Err       string `json:"err,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	BackoffMS int64  `json:"backoff_ms,omitempty"`

	// Corrupt-record field (EvCorruptRecord): dropped records in Job's file.
	Count int `json:"count,omitempty"`
}

// Metric is one named registry sample inside an interval.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Interval is one time-series sample, emitted every IntervalPeriod retired
// instructions. All rate fields are computed over the interval (deltas),
// not cumulatively, so plotting them directly gives the per-phase behavior
// end-of-run aggregates hide. Like Event, intervals passed to a Sink are
// scratch storage: copy to retain (including the Metrics slice).
type Interval struct {
	Index   int    `json:"index"`
	Cycle   uint64 `json:"cycle"`   // cycle count at the sample point
	Retired uint64 `json:"retired"` // cumulative retired instructions

	Cycles       uint64  `json:"cycles"`       // cycles in this interval
	Instructions uint64  `json:"instructions"` // instructions in this interval
	IPC          float64 `json:"ipc"`
	MPKI         float64 `json:"mpki"`
	Flushes      uint64  `json:"flushes"`
	EarlyFlushes uint64  `json:"early_flushes"`

	// Companion (TEA) metrics; zero when no companion is attached.
	Coverage          float64 `json:"coverage"`
	Accuracy          float64 `json:"accuracy"`
	BlockCacheHitRate float64 `json:"block_cache_hit_rate"`
	FillBufOccupancy  int     `json:"fill_buf_occupancy"`

	// Metrics carries every registered registry metric at the sample point
	// (cumulative values, registration order).
	Metrics []Metric `json:"metrics,omitempty"`
}
