package telemetry

// DefaultIntervalPeriod is the default time-series sampling period, in
// retired instructions. Flush counts and the other interval rates are
// therefore "per 10k retired instructions" unless overridden.
const DefaultIntervalPeriod = 10_000

// Config configures a Collector.
type Config struct {
	// Sink receives events and intervals (nil = NullSink).
	Sink Sink
	// IntervalPeriod is the retired-instruction distance between interval
	// samples (0 = DefaultIntervalPeriod). Sampling can be disabled by
	// setting NoIntervals.
	IntervalPeriod uint64
	// NoIntervals disables time-series sampling entirely.
	NoIntervals bool
	// TraceStart and TraceEnd bound the trace-event window in cycles
	// (TraceEnd 0 = unbounded). Interval samples ignore the window.
	TraceStart, TraceEnd uint64
	// Heartbeat, when non-nil, is beaten at every interval sample so a
	// watchdog can observe forward progress through the collector (the run
	// loop's check boundaries beat it too; see pipeline.Config.Heartbeat).
	Heartbeat *Heartbeat
}

// Collector owns one run's telemetry state: the metric registry, the
// sampling cursor, and scratch Event/Interval storage so the steady-state
// emission path allocates nothing. A Collector (like its Sink) belongs to
// exactly one simulated core.
type Collector struct {
	sink    Sink
	reg     *Registry
	tracing bool // false for NullSink: event construction is skipped
	start   uint64
	end     uint64

	period uint64
	next   uint64 // retired-instruction count of the next sample (0 = off)
	index  int

	hb *Heartbeat

	evt Event    // scratch for Emit
	iv  Interval // scratch for BeginInterval/EmitInterval
}

// NewCollector builds a collector from cfg.
func NewCollector(cfg Config) *Collector {
	c := &Collector{
		sink:  cfg.Sink,
		reg:   NewRegistry(),
		start: cfg.TraceStart,
		end:   cfg.TraceEnd,
		hb:    cfg.Heartbeat,
	}
	if c.sink == nil {
		c.sink = NullSink{}
	}
	if _, null := c.sink.(NullSink); !null {
		c.tracing = true
	}
	if !cfg.NoIntervals {
		c.period = cfg.IntervalPeriod
		if c.period == 0 {
			c.period = DefaultIntervalPeriod
		}
		c.next = c.period
	}
	return c
}

// Registry returns the collector's metric registry.
func (c *Collector) Registry() *Registry { return c.reg }

// Sink returns the collector's sink.
func (c *Collector) Sink() Sink { return c.sink }

// TraceOn reports whether a trace event at the given cycle should be
// emitted: a real sink is attached and the cycle is inside the window.
// Callers must check this before building an Event, so the null path never
// constructs one (Event construction may format instruction text).
func (c *Collector) TraceOn(cycle uint64) bool {
	return c.tracing && cycle >= c.start && (c.end == 0 || cycle <= c.end)
}

// Emit forwards one trace event. Callers are expected to have checked
// TraceOn; Emit re-checks only the sink so a stray call stays safe.
func (c *Collector) Emit(e Event) {
	if !c.tracing {
		return
	}
	c.evt = e
	c.sink.Event(&c.evt)
}

// IntervalDue reports whether the retired-instruction count has crossed
// the next sample boundary.
func (c *Collector) IntervalDue(retired uint64) bool {
	return c.next != 0 && retired >= c.next
}

// BeginInterval resets and returns the scratch interval for the sample at
// (cycle, retired). The caller fills the delta fields (and lets the
// companion annotate its own) before calling EmitInterval.
func (c *Collector) BeginInterval(cycle, retired uint64) *Interval {
	metrics := c.iv.Metrics[:0] // keep the backing array across samples
	c.iv = Interval{Index: c.index, Cycle: cycle, Retired: retired, Metrics: metrics}
	return &c.iv
}

// EmitInterval appends the registry snapshot to the scratch interval,
// forwards it to the sink, and advances the sampling cursor.
func (c *Collector) EmitInterval() {
	// Iterate the registry directly (not via Visit) so the sample path has
	// no closure and stays allocation-free after the Metrics slice warms up.
	for _, name := range c.reg.names {
		c.iv.Metrics = append(c.iv.Metrics, Metric{Name: name, Value: c.reg.value(name)})
	}
	c.sink.Interval(&c.iv)
	if c.hb != nil {
		c.hb.Beat(c.iv.Cycle)
	}
	c.index++
	c.next += c.period
}

// Close closes the sink.
func (c *Collector) Close() error { return c.sink.Close() }
