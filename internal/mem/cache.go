package mem

// Timing cache model: set-associative, LRU, writeback/write-allocate, with
// MSHR-style miss tracking. The model is "compute at issue": an access
// immediately computes its completion cycle by walking the hierarchy, and a
// line being filled carries its fill-completion cycle, so a later access to
// the same line before the fill completes merges with the outstanding miss
// (secondary miss) exactly like an MSHR would.

// LineBytes is the cache line size used throughout the hierarchy (Table I).
const LineBytes = 64

// LineOf returns the line-aligned address containing addr.
func LineOf(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

type cacheLine struct {
	valid   bool
	dirty   bool
	tag     uint64
	readyAt uint64 // fill completion cycle; line usable only after this
	lru     uint32
}

// Cache is one level of the hierarchy.
type Cache struct {
	name    string
	sets    int
	ways    int
	hitLat  uint64
	lines   []cacheLine // sets*ways, way-major within a set
	mshrCap int

	// Statistics.
	Accesses uint64
	Misses   uint64

	lruTick uint32
	// fills holds completion cycles of outstanding misses (the MSHR file);
	// entries are pruned lazily.
	fills []uint64
}

// NewCache builds a cache with the given geometry. sizeBytes/ways/LineBytes
// must be a power-of-two set count.
func NewCache(name string, sizeBytes, ways int, hitLat uint64, mshrs int) *Cache {
	sets := sizeBytes / ways / LineBytes
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("mem: cache set count must be a positive power of two: " + name)
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		hitLat:  hitLat,
		lines:   make([]cacheLine, sets*ways),
		mshrCap: mshrs,
	}
}

func (c *Cache) set(line uint64) []cacheLine {
	idx := int(line/LineBytes) & (c.sets - 1)
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// mshrAvailable prunes completed fills and reports whether a new miss can
// be tracked at cycle now.
func (c *Cache) mshrAvailable(now uint64) bool {
	live := c.fills[:0]
	for _, f := range c.fills {
		if f > now {
			live = append(live, f)
		}
	}
	c.fills = live
	return len(c.fills) < c.mshrCap
}

// noteFill records an outstanding miss completing at readyAt.
func (c *Cache) noteFill(readyAt uint64) { c.fills = append(c.fills, readyAt) }

// mshrFree reports whether a new miss could be tracked at cycle now: the
// read-only counterpart of mshrAvailable (same predicate, no pruning).
func (c *Cache) mshrFree(now uint64) bool {
	n := 0
	for _, f := range c.fills {
		if f > now {
			n++
		}
	}
	return n < c.mshrCap
}

// NextFill returns the completion cycle of the earliest fill still
// outstanding strictly after now, or 0 when none is in flight. Read-only:
// the MSHR file is pruned lazily by mshrAvailable, not here, so probing
// for the next event never perturbs cache state.
func (c *Cache) NextFill(now uint64) uint64 {
	var next uint64
	for _, f := range c.fills {
		if f > now && (next == 0 || f < next) {
			next = f
		}
	}
	return next
}

// lookup finds the way holding line, or nil.
func (c *Cache) lookup(line uint64) *cacheLine {
	ws := c.set(line)
	for i := range ws {
		if ws[i].valid && ws[i].tag == line {
			return &ws[i]
		}
	}
	return nil
}

// victim picks a way for replacement, preferring invalid ways, then the
// least recently used line that is not mid-fill.
func (c *Cache) victim(line uint64, now uint64) *cacheLine {
	ws := c.set(line)
	var best *cacheLine
	for i := range ws {
		l := &ws[i]
		if !l.valid {
			return l
		}
		if l.readyAt > now {
			continue // don't evict a line still being filled
		}
		if best == nil || l.lru < best.lru {
			best = l
		}
	}
	if best == nil {
		// Every way is mid-fill; fall back to raw LRU (rare; models a
		// stalled fill buffer rather than deadlocking).
		for i := range ws {
			l := &ws[i]
			if best == nil || l.lru < best.lru {
				best = l
			}
		}
	}
	return best
}

func (c *Cache) touch(l *cacheLine) {
	c.lruTick++
	l.lru = c.lruTick
}

// AccessResult describes one hierarchy access.
type AccessResult struct {
	ReadyAt uint64 // cycle the data is available to the requester
	HitL1   bool
	HitLLC  bool
	DRAM    bool
}

// Probe reports whether line is present and fully filled at cycle now,
// without touching LRU or stats (used by tests and diagnostics).
func (c *Cache) Probe(line uint64, now uint64) bool {
	l := c.lookup(line)
	return l != nil && l.readyAt <= now
}
