package mem

// Hierarchy ties the caches and DRAM together: split L1I/L1D, a shared LLC,
// and the DDR4 model (Table I geometry by default). Accesses compute their
// completion cycle at issue; lines mid-fill act as MSHR entries, so
// secondary misses merge onto the outstanding fill.

// HierarchyConfig sets the cache geometry.
type HierarchyConfig struct {
	L1ISize, L1IWays  int
	L1DSize, L1DWays  int
	LLCSize, LLCWays  int
	L1Lat, LLCLat     uint64
	L1MSHRs, LLCMSHRs int

	// Quick selects the statistical fidelity tier (see quick.go): hit/miss
	// by deterministic draw at the configured percentages, fixed latencies,
	// no MSHR/LRU/DRAM-channel state. Outside the bit-identity contract.
	// Zero Quick* parameters take the quickDefault* values.
	Quick          bool
	QuickL1HitPct  int    // percent of accesses served at L1 latency
	QuickLLCHitPct int    // percent of L1 misses served at LLC latency
	QuickMemLat    uint64 // flat latency of everything deeper
}

// DefaultHierarchyConfig returns the Table I memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 48 << 10, L1DWays: 12,
		LLCSize: 1 << 20, LLCWays: 16,
		L1Lat: 4, LLCLat: 18,
		L1MSHRs: 16, LLCMSHRs: 32,
	}
}

// Hierarchy is the full memory system timing model.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	LLC  *Cache
	DRAM *DRAM

	// quick, when non-nil, replaces the full hierarchy walk with the
	// statistical fidelity tier (see quick.go). One predictable branch at
	// the top of access(); nil on every exact-tier run.
	quick *quickModel
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		L1I:  NewCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.L1Lat, cfg.L1MSHRs),
		L1D:  NewCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.L1Lat, cfg.L1MSHRs),
		LLC:  NewCache("LLC", cfg.LLCSize, cfg.LLCWays, cfg.LLCLat, cfg.LLCMSHRs),
		DRAM: &DRAM{},
	}
	if cfg.Quick {
		q := &quickModel{
			l1HitPct:  uint64(cfg.QuickL1HitPct),
			llcHitPct: uint64(cfg.QuickLLCHitPct),
			memLat:    cfg.QuickMemLat,
		}
		if cfg.QuickL1HitPct == 0 {
			q.l1HitPct = quickDefaultL1HitPct
		}
		if cfg.QuickLLCHitPct == 0 {
			q.llcHitPct = quickDefaultLLCHitPct
		}
		if cfg.QuickMemLat == 0 {
			q.memLat = quickDefaultMemLat
		}
		h.quick = q
	}
	return h
}

// access performs a load-type access through l1 → LLC → DRAM. ok=false means
// the access could not be accepted this cycle (L1 MSHRs full) and must retry.
// A rejected access mutates nothing — no counters, LRU, MSHRs, or DRAM state
// — so a retry loop is free to skip guaranteed-rejected probes (the core's
// MSHR-full load parking relies on this); hit/miss counters count accepted
// accesses once, not per retry attempt.
func (h *Hierarchy) access(l1 *Cache, addr uint64, now uint64, dirty bool) (AccessResult, bool) {
	if h.quick != nil {
		return h.quickAccess(l1, addr, now)
	}
	line := LineOf(addr)
	if l := l1.lookup(line); l != nil {
		l1.Accesses++
		l1.touch(l)
		if dirty {
			l.dirty = true
		}
		ready := now + l1.hitLat
		if l.readyAt > now {
			// Hit on a line still being filled: merge with the fill.
			ready = l.readyAt
		}
		return AccessResult{ReadyAt: ready, HitL1: true}, true
	}

	// L1 miss.
	if !l1.mshrAvailable(now) {
		return AccessResult{}, false
	}
	res := AccessResult{}

	// LLC lookup.
	var fillReady uint64
	if l := h.LLC.lookup(line); l != nil {
		h.LLC.Accesses++
		h.LLC.touch(l)
		fillReady = now + l1.hitLat + h.LLC.hitLat
		if l.readyAt > now && l.readyAt+l1.hitLat > fillReady {
			fillReady = l.readyAt + l1.hitLat
		}
		res.HitLLC = true
	} else {
		if !h.LLC.mshrAvailable(now) {
			return AccessResult{}, false
		}
		h.LLC.Accesses++
		h.LLC.Misses++
		dramDone := h.DRAM.Access(now+l1.hitLat+h.LLC.hitLat, line, false)
		fillReady = dramDone
		res.DRAM = true
		h.installLLC(line, dramDone, now)
		h.LLC.noteFill(dramDone)
	}
	l1.Accesses++
	l1.Misses++

	h.installL1(l1, line, fillReady, now, dirty)
	l1.noteFill(fillReady)
	res.ReadyAt = fillReady
	return res, true
}

// installL1 places line into l1, writing back a dirty victim.
func (h *Hierarchy) installL1(l1 *Cache, line uint64, readyAt uint64, now uint64, dirty bool) {
	v := l1.victim(line, now)
	if v.valid && v.dirty {
		h.writeback(v.tag, now)
	}
	*v = cacheLine{valid: true, dirty: dirty, tag: line, readyAt: readyAt}
	l1.touch(v)
}

// installLLC places line into the LLC, writing back a dirty victim to DRAM.
func (h *Hierarchy) installLLC(line uint64, readyAt uint64, now uint64) {
	v := h.LLC.victim(line, now)
	if v.valid && v.dirty {
		h.DRAM.Access(now, v.tag, true)
	}
	*v = cacheLine{valid: true, tag: line, readyAt: readyAt}
	h.LLC.touch(v)
}

// writeback moves a dirty L1 line down to the LLC (allocating if absent).
func (h *Hierarchy) writeback(line uint64, now uint64) {
	if l := h.LLC.lookup(line); l != nil {
		l.dirty = true
		h.LLC.touch(l)
		return
	}
	// Non-inclusive victim fill: install without a timing penalty for the
	// requester (writeback bandwidth is not the bottleneck we study).
	v := h.LLC.victim(line, now)
	if v.valid && v.dirty {
		h.DRAM.Access(now, v.tag, true)
	}
	*v = cacheLine{valid: true, dirty: true, tag: line, readyAt: now}
	h.LLC.touch(v)
}

// NextEvent returns the earliest cycle strictly after now at which an
// outstanding fill anywhere in the hierarchy (L1I, L1D, or LLC) completes,
// or 0 when the memory system is quiet. DRAM timing needs no separate
// entry: the compute-at-issue model folds DRAM completion into the fill
// readyAt recorded by noteFill (DRAM.NextEvent exposes the raw channel
// horizon for diagnostics). The core's idle-cycle skipper uses this as a
// conservative wake source.
func (h *Hierarchy) NextEvent(now uint64) uint64 {
	next := h.L1I.NextFill(now)
	if d := h.L1D.NextFill(now); d != 0 && (next == 0 || d < next) {
		next = d
	}
	if l := h.LLC.NextFill(now); l != 0 && (next == 0 || l < next) {
		next = l
	}
	return next
}

// Load performs a data load. ok=false means retry next cycle (MSHRs full).
func (h *Hierarchy) Load(addr uint64, now uint64) (AccessResult, bool) {
	return h.access(h.L1D, addr, now, false)
}

// LoadWouldAccept reports whether a data load of addr issued at cycle now
// would be accepted (L1D hit, fill merge, or trackable miss) without
// performing the access — no counter, LRU, MSHR, or DRAM mutation. It
// replicates access()'s rejection conditions exactly: false means Load
// would return ok=false for full MSHRs. The answer can only flip to true
// when an outstanding fill completes (see NextEvent), so the core's idle
// skipper can sleep a blocked load until then.
func (h *Hierarchy) LoadWouldAccept(addr uint64, now uint64) bool {
	if h.quick != nil {
		return true // quick tier accepts every access
	}
	line := LineOf(addr)
	if h.L1D.lookup(line) != nil {
		return true // hit, or merge with the line's outstanding fill
	}
	if !h.L1D.mshrFree(now) {
		return false
	}
	if h.LLC.lookup(line) != nil {
		return true
	}
	return h.LLC.mshrFree(now)
}

// Fetch performs an instruction fetch for the line containing addr.
func (h *Hierarchy) Fetch(addr uint64, now uint64) (AccessResult, bool) {
	return h.access(h.L1I, addr, now, false)
}

// StoreCommit writes a retiring store into the L1D (write-allocate,
// writeback). ok=false means retry (MSHRs full). The returned ReadyAt is
// when the store's line is present (the store-queue entry frees then).
func (h *Hierarchy) StoreCommit(addr uint64, now uint64) (AccessResult, bool) {
	return h.access(h.L1D, addr, now, true)
}
