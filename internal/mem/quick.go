package mem

// Quick fidelity tier: a statistical memory model that replaces the full
// cache-hierarchy walk (lookup, LRU, MSHR tracking, DRAM channel timing)
// with a deterministic hit/miss draw and fixed latencies. It exists for
// interactive sweeps where wall-clock matters more than memory-system
// fidelity, and it is explicitly OUTSIDE the simulator's bit-identity
// contract: quick results are self-consistent and reproducible (the draw is
// a pure hash of the access stream), but they are not comparable to
// exact-tier runs and must never be mixed into paper-figure tables (see
// EXPERIMENTS.md). The tea fast-path equivalence harness rejects quick
// specs outright rather than letting them diverge silently.
//
// Model: every access is accepted (no MSHR rejections, so the core's
// load-parking and store-commit-retry paths never engage) and completes at
// a fixed depth-dependent latency — L1 hit, LLC hit, or memory — chosen by
// hashing the line address with a monotone access counter against the
// configured hit percentages. Per-level hit/miss counters are maintained so
// diagnostics (teadbg, telemetry gauges) keep working.

// quickModel holds the statistical tier's parameters and draw state.
type quickModel struct {
	l1HitPct  uint64 // percent of accesses served at L1 latency
	llcHitPct uint64 // percent of L1 misses served at LLC latency
	memLat    uint64 // flat latency of everything else
	n         uint64 // access counter feeding the deterministic draw
}

// Default quick-tier parameters (used for zero config fields): hit rates in
// the neighborhood of the suite's exact-tier averages and a flat DRAM
// latency close to the DDR4 model's typical loaded read.
const (
	quickDefaultL1HitPct  = 90
	quickDefaultLLCHitPct = 60
	quickDefaultMemLat    = 180
)

// draw returns a deterministic pseudo-random value in [0,100) for one
// access. SplitMix64-style finalizer over (line, access index): fully
// determined by the access stream, so quick runs are reproducible and
// memoizable; no global RNG, no wall clock.
func (q *quickModel) draw(line uint64) uint64 {
	q.n++
	x := line*0x9E3779B97F4A7C15 + q.n*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return x % 100
}

// quickAccess is the statistical tier's replacement for access(): always
// accepted, latency by drawn level, counters bumped for diagnostics.
func (h *Hierarchy) quickAccess(l1 *Cache, addr uint64, now uint64) (AccessResult, bool) {
	q := h.quick
	line := LineOf(addr)
	l1.Accesses++
	if q.draw(line) < q.l1HitPct {
		return AccessResult{ReadyAt: now + l1.hitLat, HitL1: true}, true
	}
	l1.Misses++
	h.LLC.Accesses++
	if q.draw(line) < q.llcHitPct {
		return AccessResult{ReadyAt: now + l1.hitLat + h.LLC.hitLat, HitLLC: true}, true
	}
	h.LLC.Misses++
	h.DRAM.Reads++
	return AccessResult{ReadyAt: now + q.memLat, DRAM: true}, true
}
