package mem

// Simplified DDR4-2400R main-memory model in the spirit of Ramulator
// (Table I: 1 rank, 2 channels, 4 bank groups × 4 banks per channel,
// tRP-tCL-tRCD = 16-16-16). The model tracks per-bank open rows and
// busy-until times plus per-channel data-bus occupancy, producing realistic
// row-hit / row-miss / row-conflict latencies and bank-level parallelism.

const (
	dramChannels = 2
	dramBanks    = 16 // 4 bank groups × 4 banks per channel
	colBits      = 7  // 128 columns of 64B per row → 8KB rows
	coreClockMHz = 3200
	dramClockMHz = 1200
	tRP          = 16 // DRAM cycles
	tRCD         = 16
	tCL          = 16
	tBurst       = 4  // BL8 on a 64-bit bus = 4 DRAM cycles per 64B line
	ctrlOverhead = 20 // core cycles: queueing/controller/NoC overhead each way
)

// dramCycles converts DRAM cycles to core cycles (rounded up).
func dramCycles(n uint64) uint64 {
	return (n*coreClockMHz + dramClockMHz - 1) / dramClockMHz
}

type dramBank struct {
	rowOpen bool
	row     uint64
	readyAt uint64 // core cycle when the bank can accept a new command
}

// DRAM is the main-memory timing model.
type DRAM struct {
	banks   [dramChannels][dramBanks]dramBank
	busFree [dramChannels]uint64 // data-bus availability per channel

	// Statistics.
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
}

// mapAddr splits a line address into channel, bank, and row. Lines
// interleave across channels then banks so sequential streams exploit
// bank-level parallelism.
func mapAddr(line uint64) (ch, bank int, row uint64) {
	blk := line / LineBytes
	ch = int(blk % dramChannels)
	blk /= dramChannels
	bank = int(blk % dramBanks)
	blk /= dramBanks
	row = blk >> colBits
	return
}

// Access models one 64B line transfer starting no earlier than core cycle
// `start` and returns the completion cycle.
func (d *DRAM) Access(start uint64, line uint64, write bool) uint64 {
	ch, bank, row := mapAddr(line)
	b := &d.banks[ch][bank]

	t := start + ctrlOverhead
	if b.readyAt > t {
		t = b.readyAt
	}

	var lat uint64
	switch {
	case b.rowOpen && b.row == row:
		d.RowHits++
		lat = dramCycles(tCL)
	case !b.rowOpen:
		d.RowMisses++
		lat = dramCycles(tRCD + tCL)
	default:
		d.RowConflicts++
		lat = dramCycles(tRP + tRCD + tCL)
	}
	b.rowOpen, b.row = true, row

	dataStart := t + lat
	if d.busFree[ch] > dataStart {
		dataStart = d.busFree[ch]
	}
	done := dataStart + dramCycles(tBurst)
	d.busFree[ch] = done
	b.readyAt = done

	if write {
		d.Writes++
		// Writes complete from the requester's perspective at enqueue; the
		// bank stays busy (already modelled via readyAt).
		return start + ctrlOverhead
	}
	d.Reads++
	return done + ctrlOverhead
}

// NextEvent returns the earliest cycle strictly after now at which a bank
// or data bus becomes free again, or 0 when the whole channel array is
// already quiet. Requesters never need this — fill completion cycles
// (Hierarchy.NextEvent) subsume it, since a line's fill readyAt is always
// at or after the bank/bus release — but it exposes the raw channel
// horizon for diagnostics and tests.
func (d *DRAM) NextEvent(now uint64) uint64 {
	var next uint64
	closer := func(at uint64) {
		if at > now && (next == 0 || at < next) {
			next = at
		}
	}
	for ch := range d.banks {
		closer(d.busFree[ch])
		for bank := range d.banks[ch] {
			closer(d.banks[ch][bank].readyAt)
		}
	}
	return next
}
