// Package mem provides the simulated memory system: a sparse flat memory
// image shared by the functional emulator and the timing model, plus the
// cache hierarchy and DRAM timing model used by the pipeline.
package mem

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Image is a sparse, flat, little-endian 64-bit memory image. Pages are
// allocated on first touch; untouched memory reads as zero.
//
// Image is not safe for concurrent use; the simulator is single-threaded by
// design (cycle-by-cycle determinism).
type Image struct {
	pages map[uint64]*[pageSize]byte
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Image) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Byte returns the byte at addr.
func (m *Image) Byte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Image) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns size bytes starting at addr, zero-extended into a uint64.
// size must be 1, 2, 4, or 8. Accesses may straddle page boundaries.
func (m *Image) Read(addr uint64, size int) uint64 {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.Byte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr. size must be 1, 2, 4, or 8.
func (m *Image) Write(addr uint64, v uint64, size int) {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadU64 reads an 8-byte little-endian word.
func (m *Image) ReadU64(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteU64 writes an 8-byte little-endian word.
func (m *Image) WriteU64(addr uint64, v uint64) { m.Write(addr, v, 8) }

// WriteBytes copies b into memory starting at addr.
func (m *Image) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr, true)
		off := addr & pageMask
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// Clone returns a deep copy of the image. Used to snapshot the initial state
// so the timing model and the golden emulator run on independent memories.
func (m *Image) Clone() *Image {
	c := NewImage()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Pages returns the number of allocated 4KB pages (for tests/diagnostics).
func (m *Image) Pages() int { return len(m.pages) }
