package mem

import (
	"testing"
	"testing/quick"
)

func newH() *Hierarchy { return NewHierarchy(DefaultHierarchyConfig()) }

func TestColdMissThenHit(t *testing.T) {
	h := newH()
	r1, ok := h.Load(0x10000, 100)
	if !ok {
		t.Fatal("load rejected")
	}
	if r1.HitL1 || r1.HitLLC || !r1.DRAM {
		t.Fatalf("cold access should go to DRAM: %+v", r1)
	}
	if r1.ReadyAt < 100+4+18+40 {
		t.Fatalf("DRAM latency unrealistically low: %d", r1.ReadyAt-100)
	}
	// A later access after the fill is an L1 hit with hit latency.
	r2, _ := h.Load(0x10008, r1.ReadyAt+10)
	if !r2.HitL1 {
		t.Fatalf("expected L1 hit: %+v", r2)
	}
	if r2.ReadyAt != r1.ReadyAt+10+4 {
		t.Fatalf("hit latency = %d", r2.ReadyAt-(r1.ReadyAt+10))
	}
}

func TestSecondaryMissMerges(t *testing.T) {
	h := newH()
	r1, _ := h.Load(0x20000, 50)
	// Another access to the same line before the fill completes must return
	// the same completion cycle (MSHR merge), not start a new DRAM access.
	reads := h.DRAM.Reads
	r2, ok := h.Load(0x20010, 60)
	if !ok {
		t.Fatal("secondary miss rejected")
	}
	if !r2.HitL1 {
		t.Fatalf("secondary miss should merge as hit-on-fill: %+v", r2)
	}
	if r2.ReadyAt != r1.ReadyAt {
		t.Fatalf("merged miss readyAt %d != primary %d", r2.ReadyAt, r1.ReadyAt)
	}
	if h.DRAM.Reads != reads {
		t.Fatal("secondary miss issued a new DRAM read")
	}
}

func TestRowBufferHitFasterThanConflict(t *testing.T) {
	d := &DRAM{}
	line := uint64(0x100000)
	done1 := d.Access(0, line, false)
	// Same row, next line in the same bank: stride by channels*banks lines.
	sameRow := line + LineBytes*dramChannels*dramBanks
	done2 := d.Access(done1, sameRow, false) - done1
	// Different row, same bank → conflict.
	conflictRow := line + LineBytes*dramChannels*dramBanks<<colBits
	done3 := d.Access(done1+done2+1000, conflictRow, false) - (done1 + done2 + 1000)
	if d.RowHits == 0 || d.RowConflicts == 0 {
		t.Fatalf("hits=%d conflicts=%d", d.RowHits, d.RowConflicts)
	}
	if done2 >= done3 {
		t.Fatalf("row hit (%d) should beat conflict (%d)", done2, done3)
	}
}

func TestBankParallelism(t *testing.T) {
	d := &DRAM{}
	// Two accesses to different banks starting together overlap: the second
	// finishes well before 2x a single access.
	single := d.Access(0, 0, false)
	d2 := &DRAM{}
	a := d2.Access(0, 0, false)
	b := d2.Access(0, LineBytes*dramChannels, false) // next bank, same channel
	if b >= a+single {
		t.Fatalf("no bank parallelism: a=%d b=%d single=%d", a, b, single)
	}
}

func TestMSHRLimitRejects(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1MSHRs = 2
	h := NewHierarchy(cfg)
	if _, ok := h.Load(0x0000, 10); !ok {
		t.Fatal("first miss rejected")
	}
	if _, ok := h.Load(0x10000, 10); !ok {
		t.Fatal("second miss rejected")
	}
	if _, ok := h.Load(0x20000, 10); ok {
		t.Fatal("third miss should be rejected with 2 MSHRs")
	}
	// After the fills complete, new misses are accepted again.
	if _, ok := h.Load(0x20000, 10_000_000); !ok {
		t.Fatal("miss rejected after MSHRs drained")
	}
}

func TestLRUEviction(t *testing.T) {
	// Fill one L1D set (12 ways) plus one more; the first line must be gone.
	h := newH()
	setStride := uint64(48<<10) / 12 // bytes covering one set walk = sets*LineBytes
	base := uint64(0x100000)
	now := uint64(0)
	var lines []uint64
	for i := 0; i <= 12; i++ {
		ln := base + uint64(i)*setStride
		lines = append(lines, ln)
		r, ok := h.Load(ln, now)
		if !ok {
			t.Fatalf("load %d rejected", i)
		}
		now = r.ReadyAt + 1
	}
	if h.L1D.Probe(LineOf(lines[0]), now) {
		t.Fatal("LRU victim not evicted")
	}
	if !h.L1D.Probe(LineOf(lines[12]), now) {
		t.Fatal("most recent line missing")
	}
}

func TestDirtyWritebackReachesDRAM(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L1DSize = 12 * LineBytes // 1 set, 12 ways: tiny cache to force evictions
	cfg.LLCSize = 16 * LineBytes // 1 set, 16 ways
	h := NewHierarchy(cfg)
	now := uint64(0)
	// Dirty 40 distinct lines; evictions must cascade to DRAM writes.
	for i := 0; i < 40; i++ {
		r, ok := h.StoreCommit(uint64(i)*LineBytes*7, now)
		if !ok {
			now += 1000
			continue
		}
		now = r.ReadyAt + 1
	}
	if h.DRAM.Writes == 0 {
		t.Fatal("no dirty writebacks reached DRAM")
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := newH()
	h.Fetch(0x400, 0)
	if h.L1I.Accesses != 1 || h.L1D.Accesses != 0 {
		t.Fatalf("I/D split broken: I=%d D=%d", h.L1I.Accesses, h.L1D.Accesses)
	}
}

// Property: completion time is always at least hit latency after issue, and
// accesses to the same line never report an earlier ReadyAt than an
// outstanding fill for that line.
func TestMonotoneCompletionProperty(t *testing.T) {
	h := newH()
	now := uint64(0)
	lastReady := map[uint64]uint64{}
	f := func(addrSeed uint32, delta uint8) bool {
		now += uint64(delta)
		addr := uint64(addrSeed) % (1 << 22)
		r, ok := h.Load(addr, now)
		if !ok {
			return true // MSHR full is a legal outcome
		}
		if r.ReadyAt < now+4 {
			return false
		}
		line := LineOf(addr)
		if prev, seen := lastReady[line]; seen && r.ReadyAt < prev && prev > now {
			return false // reported earlier than the outstanding fill
		}
		lastReady[line] = r.ReadyAt
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
