package mem

import (
	"testing"
	"testing/quick"
)

func TestImageReadWrite(t *testing.T) {
	m := NewImage()
	if got := m.Read(0x1234, 8); got != 0 {
		t.Fatalf("untouched memory = %#x, want 0", got)
	}
	m.WriteU64(0x1000, 0x1122334455667788)
	if got := m.ReadU64(0x1000); got != 0x1122334455667788 {
		t.Fatalf("ReadU64 = %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Fatalf("low half = %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Fatalf("high half = %#x", got)
	}
	if got := m.Read(0x1003, 1); got != 0x55 {
		t.Fatalf("byte = %#x", got)
	}
	m.Write(0x1002, 0xAB, 1)
	if got := m.ReadU64(0x1000); got != 0x11223344_55AB7788 {
		t.Fatalf("byte patch = %#x", got)
	}
}

func TestImagePageStraddle(t *testing.T) {
	m := NewImage()
	addr := uint64(pageSize - 3) // 8-byte access straddles page 0/1
	m.Write(addr, 0xDEADBEEFCAFEF00D, 8)
	if got := m.Read(addr, 8); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("straddle read = %#x", got)
	}
	if m.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", m.Pages())
	}
}

func TestImageWriteBytes(t *testing.T) {
	m := NewImage()
	data := make([]byte, 3*pageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := uint64(pageSize / 2)
	m.WriteBytes(base, data)
	for i, want := range data {
		if got := m.Byte(base + uint64(i)); got != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestImageClone(t *testing.T) {
	m := NewImage()
	m.WriteU64(0x40, 42)
	c := m.Clone()
	c.WriteU64(0x40, 99)
	if got := m.ReadU64(0x40); got != 42 {
		t.Fatalf("clone aliased original: %d", got)
	}
	if got := c.ReadU64(0x40); got != 99 {
		t.Fatalf("clone write lost: %d", got)
	}
}

// Property: for any address and value, a write of a given size followed by a
// read of the same size returns the value truncated to that size.
func TestImageRoundTripProperty(t *testing.T) {
	m := NewImage()
	sizes := []int{1, 2, 4, 8}
	f := func(addr uint64, v uint64, szIdx uint8) bool {
		addr %= 1 << 20 // keep the page map small
		sz := sizes[int(szIdx)%len(sizes)]
		m.Write(addr, v, sz)
		got := m.Read(addr, sz)
		want := v
		if sz < 8 {
			want &= (1 << (8 * sz)) - 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: writes to disjoint byte ranges do not interfere.
func TestImageDisjointWritesProperty(t *testing.T) {
	f := func(a uint32, b uint32) bool {
		m := NewImage()
		addrA := uint64(a) % (1 << 16)
		addrB := addrA + 8 + uint64(b)%1024
		m.Write(addrA, 0x0101010101010101, 8)
		m.Write(addrB, 0x0202020202020202, 8)
		return m.Read(addrA, 8) == 0x0101010101010101 &&
			m.Read(addrB, 8) == 0x0202020202020202
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
